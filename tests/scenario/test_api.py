"""The unified Scenario API: loaders, Session.from_scenario, back-compat."""

import json

import pytest

from repro.faults import FaultPlan
from repro.madeleine import Session, reset_global_ids
from repro.scenario import (MessageSpec, Scenario, Topology, TrafficSpec,
                            dump_scenario, load_scenario, loads_scenario)

yaml = pytest.importorskip("yaml", reason="PyYAML not installed")


def _scenario() -> Scenario:
    topo = Topology(kind="chain", protocols=("myrinet", "sci"),
                    sizes=(1, 1), gateways=(1,))
    return Scenario(seed=9, topology=topo,
                    messages=(MessageSpec("a0", "b0", 4096),),
                    faults=FaultPlan())


def _traffic_scenario() -> Scenario:
    topo = Topology(kind="torus", protocols=("myrinet",), dims=(3, 3))
    return Scenario(seed=4, topology=topo,
                    traffic=TrafficSpec(pattern="incast", flows=6,
                                        size=8 << 10),
                    scheduler="calendar", gw_stall_timeout=None)


def test_json_file_roundtrip(tmp_path):
    sc = _traffic_scenario()
    path = tmp_path / "sc.json"
    dump_scenario(sc, path)
    assert load_scenario(path) == sc


def test_yaml_file_roundtrip(tmp_path):
    sc = _traffic_scenario()
    path = tmp_path / "sc.yaml"
    dump_scenario(sc, path)
    assert load_scenario(path) == sc


def test_loads_scenario_autodetects_format():
    sc = _scenario()
    assert loads_scenario(json.dumps(sc.to_dict())) == sc
    assert loads_scenario(yaml.safe_dump(sc.to_dict())) == sc


def test_load_scenario_accepts_fuzz_repro_wrapper(tmp_path):
    sc = _scenario()
    doc = {"version": 1, "scenario": sc.to_dict(), "failures": [],
           "stats": {}}
    path = tmp_path / "repro.json"
    path.write_text(json.dumps(doc))
    assert load_scenario(path) == sc


def test_load_repro_accepts_bare_and_yaml_docs(tmp_path):
    from repro.fuzz import load_repro

    sc = _traffic_scenario()
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps(sc.to_dict()))
    assert load_repro(bare) == sc
    as_yaml = tmp_path / "sc.yaml"
    dump_scenario(sc, as_yaml)
    assert load_repro(as_yaml) == sc


def test_session_from_scenario_builds_full_stack():
    sc = _scenario()
    reset_global_ids()
    session = Session.from_scenario(sc)
    assert len(session.virtual_channels) == 1
    vch = session.virtual_channels[0]
    assert {session.rank("a0"), session.rank("b0")} <= set(vch.members)


def test_from_scenario_respects_scheduler():
    sc = _traffic_scenario()
    reset_global_ids()
    session = Session.from_scenario(sc)
    assert session.sim.scheduler == "calendar"


def test_from_scenario_rejects_invalid():
    topo = Topology(kind="chain", protocols=("myrinet", "sci"),
                    sizes=(1, 1), gateways=(1,))
    sc = Scenario(seed=0, topology=topo)    # no messages, no traffic
    with pytest.raises(ValueError, match="no traffic"):
        Session.from_scenario(sc)


def test_fuzz_shim_warns_but_works():
    import importlib
    import sys

    sys.modules.pop("repro.fuzz.scenario", None)
    with pytest.warns(DeprecationWarning, match="repro.scenario"):
        shim = importlib.import_module("repro.fuzz.scenario")
    assert shim.Scenario is Scenario
    assert shim.Topology is Topology


def test_traffic_spec_validation():
    with pytest.raises(ValueError, match="pattern"):
        TrafficSpec(pattern="ring")
    with pytest.raises(ValueError, match="flows"):
        TrafficSpec(flows=0)
    with pytest.raises(ValueError, match="interarrival"):
        TrafficSpec(mean_interarrival=0.0)
