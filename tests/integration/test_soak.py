"""Soak test: sustained random traffic over a random cluster-of-clusters.

Many messages, random sizes and pairs, all at once — every payload must
arrive intact, in per-connection FIFO order, with zero gateway copies on
dynamic/static-borrow paths and bounded simulated time.
"""

import random

import numpy as np
import pytest

from repro.hw import build_world
from repro.madeleine import Session


def build_random_world(seed: int):
    rng = random.Random(seed)
    protos = ["myrinet", "sci", "sbp"]
    n_clusters = rng.randint(2, 3)
    adapters: dict[str, list[str]] = {}
    clusters: list[tuple[str, list[str]]] = []
    for c in range(n_clusters):
        proto = protos[c % len(protos)]
        size = rng.randint(2, 3)
        names = [f"c{c}n{i}" for i in range(size)]
        for n in names:
            adapters[n] = [proto]
        clusters.append((proto, names))
    # chain gateways: last node of cluster c also joins cluster c+1
    for c in range(n_clusters - 1):
        gw = clusters[c][1][-1]
        adapters[gw].append(clusters[c + 1][0])
    w = build_world(adapters)
    s = Session(w)
    chans = []
    for c, (proto, names) in enumerate(clusters):
        members = list(names)
        if c > 0:
            members.append(clusters[c - 1][1][-1])   # previous gateway
        chans.append(s.channel(proto, members))
    vch = s.virtual_channel(chans, packet_size=16 << 10)
    return w, s, vch


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_traffic_soak(seed):
    w, s, vch = build_random_world(seed)
    rng = random.Random(1000 + seed)
    members = vch.members
    n_messages = 25

    # plan: list of (src, dst, size, payload-seed); receivers know their
    # schedule (Madeleine receivers always know what they expect)
    plan: dict[int, list[tuple[int, int, int]]] = {m: [] for m in members}
    sends: dict[int, list[tuple[int, int, int]]] = {m: [] for m in members}
    for i in range(n_messages):
        src, dst = rng.sample(members, 2)
        size = rng.randint(1, 60_000)
        sends[src].append((dst, size, i))
        plan[dst].append((src, size, i))

    results: list[tuple[int, bool]] = []

    def payload_for(size, i):
        return (np.arange(size, dtype=np.uint64) * (i + 17) % 251).astype(np.uint8)

    def sender(rank):
        def proc():
            for dst, size, i in sends[rank]:
                m = vch.endpoint(rank).begin_packing(dst)
                yield m.pack(payload_for(size, i))
                yield m.end_packing()
        return proc

    def receiver(rank):
        def proc():
            expected = {(src, i): size for src, size, i in plan[rank]}
            # arrival order across sources is nondeterministic; match by
            # origin and per-source FIFO
            per_src: dict[int, list[tuple[int, int]]] = {}
            for src, size, i in plan[rank]:
                per_src.setdefault(src, []).append((size, i))
            for _ in range(len(plan[rank])):
                inc = yield vch.endpoint(rank).begin_unpacking()
                size, i = per_src[inc.origin].pop(0)
                _ev, b = inc.unpack(size)
                yield inc.end_unpacking()
                results.append((i, b.tobytes() == payload_for(size, i).tobytes()))
        return proc

    for rank in members:
        if sends[rank]:
            s.spawn(sender(rank)(), name=f"snd{rank}")
        if plan[rank]:
            s.spawn(receiver(rank)(), name=f"rcv{rank}")
    s.run()
    assert len(results) == n_messages
    assert all(ok for _i, ok in results)
    assert s.now < 60_000_000   # sanity: everything completed in sim time


def test_soak_per_connection_fifo():
    """Messages between one pair must arrive in send order even when other
    traffic interleaves at the gateway."""
    w = build_world({"m0": ["myrinet"], "m1": ["myrinet"],
                     "gw": ["myrinet", "sci"], "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "m1", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=8 << 10)
    seq_seen = []

    def main_sender():
        for i in range(6):
            m = vch.endpoint(0).begin_packing(3)
            yield m.pack(np.full(5000, i, dtype=np.uint8))
            yield m.end_packing()

    def noise_sender():
        for i in range(6):
            m = vch.endpoint(1).begin_packing(3)
            yield m.pack(np.full(3000, 100 + i, dtype=np.uint8))
            yield m.end_packing()

    def receiver():
        noise_next = 100
        for _ in range(12):
            inc = yield vch.endpoint(3).begin_unpacking()
            size = 5000 if inc.origin == 0 else 3000
            _ev, b = inc.unpack(size)
            yield inc.end_unpacking()
            if inc.origin == 0:
                seq_seen.append(int(b.data[0]))
            else:
                assert int(b.data[0]) == noise_next
                noise_next += 1

    s.spawn(main_sender()); s.spawn(noise_sender()); s.spawn(receiver())
    s.run()
    assert seq_seen == list(range(6))
