"""Property-based end-to-end tests: arbitrary pack sequences round-trip
bit-exactly across arbitrary (single- and multi-hop) routes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw import build_world
from repro.madeleine import RecvMode, SendMode, Session

PROTOS = ["myrinet", "sci", "sbp", "gigabit_tcp"]


def modes_strategy():
    return st.tuples(
        st.sampled_from(list(SendMode)),
        st.sampled_from(list(RecvMode)),
    ).filter(lambda t: not (t[0] == SendMode.LATER and t[1] == RecvMode.EXPRESS))


def payload_for(sizes, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=n, dtype=np.uint8) for n in sizes]


def run_roundtrip(proto_in, proto_out, sizes, modes, seed, packet_size):
    if proto_in == proto_out:
        w = build_world({"a": [proto_in], "gw": [proto_in], "b": [proto_in]})
    else:
        w = build_world({"a": [proto_in], "gw": [proto_in, proto_out],
                         "b": [proto_out]})
    s = Session(w)
    chans = ([s.channel(proto_in, ["a", "gw", "b"])]
             if proto_in == proto_out else
             [s.channel(proto_in, ["a", "gw"]),
              s.channel(proto_out, ["gw", "b"])])
    vch = s.virtual_channel(chans, packet_size=packet_size)
    parts = payload_for(sizes, seed)
    got = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        for p, (sm, rm) in zip(parts, modes):
            yield m.pack(p, sm, rm)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        bufs = []
        for p, (sm, rm) in zip(parts, modes):
            ev, b = inc.unpack(len(p), sm, rm)
            if rm == RecvMode.EXPRESS:
                yield ev
                assert b.tobytes() == p.tobytes(), "EXPRESS data late"
            bufs.append(b)
        yield inc.end_unpacking()
        got["parts"] = [b.tobytes() for b in bufs]
        got["origin"] = inc.origin

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["origin"] == 0
    assert got["parts"] == [p.tobytes() for p in parts]


@given(
    proto_in=st.sampled_from(PROTOS),
    proto_out=st.sampled_from(PROTOS),
    sizes=st.lists(st.integers(1, 50_000), min_size=1, max_size=6),
    data=st.data(),
    seed=st.integers(0, 2**31),
    packet_kb=st.sampled_from([1, 4, 16, 32]),
)
@settings(max_examples=40, deadline=None)
def test_arbitrary_messages_roundtrip(proto_in, proto_out, sizes, data,
                                      seed, packet_kb):
    modes = [data.draw(modes_strategy()) for _ in sizes]
    run_roundtrip(proto_in, proto_out, sizes, modes, seed, packet_kb << 10)


@given(
    sizes=st.lists(st.integers(1, 20_000), min_size=1, max_size=5),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=20, deadline=None)
def test_homogeneous_three_node_channel(sizes, seed):
    """A single channel spanning three nodes: direct messages, no GTM."""
    run_roundtrip("myrinet", "myrinet", sizes,
                  [(SendMode.CHEAPER, RecvMode.CHEAPER)] * len(sizes),
                  seed, 16 << 10)
