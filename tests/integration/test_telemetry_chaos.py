"""Telemetry vs. ground truth: the registry's recovery counters must agree
with what the endpoints, injector, and chaos harness observed directly."""

import pathlib
import sys

import numpy as np
import pytest

from repro.faults import ChannelFaults, FaultPlan, NodeEvent
from repro.hw import build_world
from repro.hw.params import GatewayParams
from repro.madeleine import ReliableEndpoint, RetryPolicy, Session

TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"


def lossy_transfer(drop_p=0.04, crash_at=None, nmsgs=2, nbytes=120_000,
                   seed=11):
    w = build_world({
        "m0": ["myrinet"], "gwA": ["myrinet", "sci"],
        "gwB": ["myrinet", "sci"], "s0": ["sci"],
    })
    s = Session(w, telemetry=True)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    faults = ChannelFaults(drop_p=drop_p, corrupt_p=drop_p / 2)
    plan = FaultPlan(
        seed=seed, channels={myri.id: faults, sci.id: faults},
        node_events=tuple([NodeEvent(time=crash_at, node="gwA")]
                          if crash_at is not None else []))
    injector = plan.arm(w)
    vch = s.virtual_channel(
        [myri, sci], packet_size=16 << 10,
        gateway_params=GatewayParams(stall_timeout=5_000.0))
    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()
                for _ in range(nmsgs)]
    rel_src = ReliableEndpoint(vch.endpoint(0), RetryPolicy())
    rel_dst = ReliableEndpoint(vch.endpoint(3), RetryPolicy())
    attempts = []
    got = []

    def sender():
        for p in payloads:
            attempts.append((yield from rel_src.send(3, p)))

    def receiver():
        for _ in payloads:
            _src, data, _tid = yield from rel_dst.recv()
            got.append(data)

    s.spawn(sender())
    s.spawn(receiver())
    s.run()
    assert got == payloads, "chaos transfer must deliver intact"
    return s, vch, injector, rel_src, attempts


def test_registry_counters_match_ground_truth():
    s, vch, injector, rel_src, attempts = lossy_transfer()
    m = s.metrics
    # fault-injection counters mirror the injector's own tallies
    assert m.total("faults.fragments_dropped") == injector.dropped > 0
    assert m.total("faults.fragments_corrupted") == injector.corrupted
    assert m.total("faults.fragments_delayed") == injector.delayed
    # the reliable layer's counters mirror the endpoint's attributes
    assert m.value("reliable.retransmits", vchannel=vch.name,
                   rank=0) == rel_src.retransmits > 0
    assert m.value("reliable.attempts", vchannel=vch.name,
                   rank=0) == sum(attempts)
    assert m.value("reliable.deliveries", vchannel=vch.name, rank=3) == 2


def test_failover_counter_records_gateway_crash():
    s, _vch, injector, _rel, attempts = lossy_transfer(drop_p=0.0,
                                                       crash_at=2_000.0)
    m = s.metrics
    assert m.total("vchannel.failovers") >= 1
    assert m.total("faults.node_transitions") == 1
    assert attempts[0] > 1           # the crash forced at least one retry
    assert m.total("routing.down_transitions") >= 1


def test_chaos_harness_report_reads_the_registry():
    """tools/chaos.py numbers are the registry's numbers."""
    sys.path.insert(0, str(TOOLS))
    try:
        chaos = pytest.importorskip("chaos")
        report = chaos.run_chaos(chaos.ChaosConfig(
            seed=3, messages=2, nbytes=60_000, crash_at=2_000.0))
    finally:
        sys.path.remove(str(TOOLS))
    assert report.ok
    assert report.retransmits > 0
    assert report.failovers >= 1
    assert report.fragments_dropped > 0
