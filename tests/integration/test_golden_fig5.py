"""Golden-trace regression for the hot-path pass.

The figure 5 scenario (2 MB from the SCI node to the Myrinet node through
the gateway, 64 KB paquets) was traced on the pre-optimization kernel and
committed as ``tests/data/golden_fig5_trace.json``.  The optimized kernel
must reproduce every gateway/transfer trace record — timestamps included —
bit for bit, while dispatching at least 20% fewer events per transferred MB.
"""

import json
import pathlib

import numpy as np

from repro.bench import PingHarness

GOLDEN = pathlib.Path(__file__).parent.parent / "data" / "golden_fig5_trace.json"

PACKET = 64 << 10
MESSAGE = 2 << 20

#: heap pops of the pre-optimization kernel on this scenario (all of which
#: it dispatched), divided by the 2 MB payload.
PRE_PR3_EVENTS_PER_MB = 546.5


def run_fig5():
    harness = PingHarness(packet_size=PACKET)
    world, session, vch, _ack = harness.build()
    data = np.zeros(MESSAGE, dtype=np.uint8)
    done = {}

    def snd():
        m = vch.endpoint(session.rank("b0")).begin_packing(session.rank("a0"))
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank("a0")).begin_unpacking()
        _ev, _b = inc.unpack(MESSAGE)
        yield inc.end_unpacking()
        done["t"] = session.now

    session.spawn(snd())
    session.spawn(rcv())
    session.run()
    return world, session, done["t"]


def test_fig5_trace_bit_identical_to_pre_optimization_kernel():
    world, _session, elapsed = run_fig5()
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    current = [[r.t, r.category, r.event,
                r.attrs.get("seq"), r.attrs.get("nbytes")]
               for r in world.trace if r.category in ("gateway", "xfer")]
    assert len(current) == len(golden)
    for got, want in zip(current, golden):
        assert got == want          # exact float timestamps, no tolerance
    # End-to-end completion time measured on the pre-optimization kernel
    # (the receiver finishes one rx overhead after the last trace record).
    assert elapsed == 39503.54562454843


def test_fig5_event_cost_cut_by_at_least_twenty_percent():
    _world, session, _elapsed = run_fig5()
    per_mb = session.sim.events_processed / (MESSAGE / (1 << 20))
    reduction = 1.0 - per_mb / PRE_PR3_EVENTS_PER_MB
    assert reduction >= 0.20, (
        f"only {reduction:.1%} fewer dispatched events/MB than the "
        f"pre-optimization kernel ({per_mb:.1f} vs {PRE_PR3_EVENTS_PER_MB})")
    # Lazy cancellation must actually be exercised by this scenario.
    assert session.sim.events_cancelled > 0
