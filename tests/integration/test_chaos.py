"""Integration tests for the chaos harness (tools/chaos.py).

The acceptance scenario of the fault-tolerance work lives here: on the
two-gateway Myrinet->SCI testbed, a seeded plan dropping up to 5% of
fragments plus a mid-run gateway crash must still deliver every message
byte-identical via the surviving rail.
"""

import pathlib
import sys

import pytest

_TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(_TOOLS))

import chaos  # noqa: E402


def test_acceptance_drop_plus_gateway_crash():
    cfg = chaos.ChaosConfig(seed=7, messages=3, drop_p=0.05,
                            corrupt_p=0.025, crash_at=3_000.0)
    report = chaos.run_chaos(cfg)
    assert report.ok, report.summary()
    assert report.delivered == 3 and not report.corrupt
    assert report.error is None
    # the faults were real, and recovery did real work
    assert report.fragments_dropped > 0
    assert report.retransmits > 0


def test_chaos_run_is_reproducible():
    cfg = chaos.ChaosConfig(seed=11, messages=2, nbytes=60_000,
                            drop_p=0.04, corrupt_p=0.02)
    a = chaos.run_chaos(cfg)
    b = chaos.run_chaos(cfg)
    assert (a.attempts, a.retransmits, a.fragments_dropped,
            a.fragments_corrupted) == \
           (b.attempts, b.retransmits, b.fragments_dropped,
            b.fragments_corrupted)


def test_random_config_is_a_pure_function_of_seed():
    assert chaos.random_config(42) == chaos.random_config(42)
    assert chaos.random_config(42) != chaos.random_config(43)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_schedules_deliver(seed):
    cfg = chaos.random_config(seed, messages=2, nbytes=60_000)
    report = chaos.run_chaos(cfg)
    assert report.ok, report.summary()


def test_cli_clean_run_exits_zero(capsys):
    rc = chaos.main(["--seed", "1", "--messages", "1", "--bytes", "40000",
                     "--drop", "0", "--corrupt", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "all 1 chaos run(s) passed" in out
    assert "delivered 1/1" in out
