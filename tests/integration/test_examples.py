"""Smoke tests: every shipped example runs to completion and reports
sensible results."""

import pathlib
import runpy


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "intact: True" in out
    assert "host copies performed: 0" in out


def test_cluster_of_clusters(capsys):
    out = run_example("cluster_of_clusters.py", capsys)
    assert out.count("payload intact        : True") == 2
    assert "zero-copy forwarding" in out
    # both directions reported, the SCI->Myrinet one faster
    import re
    bws = [float(m) for m in re.findall(r"one-way bandwidth\s*:\s*([0-9.]+)", out)]
    assert len(bws) == 2
    assert bws[0] > bws[1]          # sci->myri first, then myri->sci


def test_multi_gateway_routing(capsys):
    out = run_example("multi_gateway_routing.py", capsys)
    assert "3 hop(s)" in out
    assert "intact: True" in out
    assert out.count("forwarded 1 message(s)") == 2


def test_stencil_exchange(capsys):
    out = run_example("stencil_exchange.py", capsys)
    assert "iteration 4" in out
    assert "messages forwarded by the gateway: 10" in out


def test_mpi_allreduce(capsys):
    out = run_example("mpi_allreduce.py", capsys)
    assert out.count("all ranks agree: True") == 2
    assert "gateway forwarded" in out


def test_rpc_task_farm(capsys):
    out = run_example("rpc_task_farm.py", capsys)
    assert "all results correct : True" in out
