"""Integration tests: whole cluster-of-clusters configurations."""

import numpy as np

from repro.hw import (ClusterSpec, GatewayLink, build_cluster_of_clusters,
                      build_world)
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def test_paper_testbed_end_to_end(paper_session):
    session, _myri, _sci, vch = paper_session
    data = payload(500_000)
    out = transfer_once(session, vch, src=2, dst=0, data=data)
    assert out["buf"].tobytes() == data.tobytes()
    bw = len(data) / out["t"]
    assert 20 < bw < 66, f"implausible forwarding bandwidth {bw} MB/s"


def test_two_gateway_chain():
    """myrinet cluster -- sci cluster -- sbp cluster: messages cross two
    gateways; the middle hop stays on the special channel (§2.2.2 mentions
    exactly this multi-gateway disambiguation problem)."""
    w = build_world({
        "a0": ["myrinet"], "gw1": ["myrinet", "sci"],
        "gw2": ["sci", "sbp"], "c0": ["sbp"],
    })
    s = Session(w)
    ch1 = s.channel("myrinet", ["a0", "gw1"])
    ch2 = s.channel("sci", ["gw1", "gw2"])
    ch3 = s.channel("sbp", ["gw2", "c0"])
    vch = s.virtual_channel([ch1, ch2, ch3], packet_size=8 << 10)
    data = payload(120_000)
    out = transfer_once(s, vch, src=0, dst=3, data=data)
    assert out["buf"].tobytes() == data.tobytes()
    assert out["origin"] == 0
    # both gateways forwarded exactly one message
    fwd = {wk.gw_rank: wk.messages_forwarded for wk in vch.workers
           if wk.messages_forwarded}
    assert fwd == {1: 1, 2: 1}
    # middle hop (gw1 -> gw2) must use the SCI special twin
    special_sci = vch.special_twin(ch2).id
    mids = [r for r in w.trace.query(category="xfer", event="fragment")
            if f"'{special_sci}'" in r["tag"]]
    assert mids


def test_two_gateway_reverse_direction():
    w = build_world({
        "a0": ["myrinet"], "gw1": ["myrinet", "sci"],
        "gw2": ["sci", "sbp"], "c0": ["sbp"],
    })
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["a0", "gw1"]),
        s.channel("sci", ["gw1", "gw2"]),
        s.channel("sbp", ["gw2", "c0"]),
    ], packet_size=8 << 10)
    data = payload(60_000, seed=9)
    out = transfer_once(s, vch, src=3, dst=0, data=data)
    assert out["buf"].tobytes() == data.tobytes()
    assert out["origin"] == 3


def test_larger_clusters_multiple_flows():
    """Two 3-node clusters; several concurrent forwarded messages between
    distinct pairs must all arrive intact."""
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("m", "myrinet", 3),
                  ClusterSpec("s", "sci", 3)],
        gateways=[GatewayLink("m", "s")],
    )
    s = Session(world)
    myri = s.channel("myrinet", members["m"])
    sci = s.channel("sci", members["s"] + gws)
    vch = s.virtual_channel([myri, sci], packet_size=16 << 10)
    pairs = [("m0", "s0"), ("m1", "s1"), ("s2", "m0")]
    datas = {p: payload(80_000 + 1000 * i, seed=i) for i, p in enumerate(pairs)}
    got = {}

    def make_sender(src, dst, data):
        def proc():
            m = vch.endpoint(s.rank(src)).begin_packing(s.rank(dst))
            yield m.pack(data)
            yield m.end_packing()
        return proc

    def make_receiver(dst, expected):
        def proc():
            inc = yield vch.endpoint(s.rank(dst)).begin_unpacking()
            _ev, b = inc.unpack(len(datas[expected]))
            yield inc.end_unpacking()
            got[expected] = (inc.origin, b.tobytes())
        return proc

    # m0 receives one message (from s2); s0, s1 each receive one.
    for (src, dst) in pairs:
        s.spawn(make_sender(src, dst, datas[(src, dst)])())
    for p in pairs:
        s.spawn(make_receiver(p[1], p)())
    s.run()
    for (src, dst), (origin, data) in got.items():
        assert origin == s.rank(src)
        assert data == datas[(src, dst)].tobytes()


def test_intra_cluster_traffic_does_not_cross_gateway():
    world, members, _gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("m", "myrinet", 3),
                  ClusterSpec("s", "sci", 2)],
        gateways=[GatewayLink("m", "s")],
    )
    s = Session(world)
    myri = s.channel("myrinet", members["m"])
    sci = s.channel("sci", members["s"] + _gws)
    vch = s.virtual_channel([myri, sci])
    data = payload(10_000)
    transfer_once(s, vch, src=s.rank("m0"), dst=s.rank("m1"), data=data)
    assert all(wk.messages_forwarded == 0 for wk in vch.workers)


def test_ping_pong_through_gateway_symmetric_payload():
    """Round trip: request forwarded one way, reply the other."""
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=16 << 10)
    data = payload(100_000)
    times = {}

    def pinger():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(data)
        yield m.end_packing()
        inc = yield vch.endpoint(0).begin_unpacking()
        _ev, b = inc.unpack(len(data))
        yield inc.end_unpacking()
        times["rtt"] = s.now
        times["echo_ok"] = b.tobytes() == data.tobytes()

    def ponger():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, b = inc.unpack(len(data))
        yield inc.end_unpacking()
        m = vch.endpoint(2).begin_packing(0)
        yield m.pack(b)
        yield m.end_packing()

    s.spawn(pinger()); s.spawn(ponger()); s.run()
    assert times["echo_ok"]
    assert times["rtt"] > 0


def test_fan_in_to_single_receiver():
    """Several origins sending to the same destination through the same
    gateway: messages serialize but all arrive correctly."""
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("m", "myrinet", 3),
                  ClusterSpec("s", "sci", 2)],
        gateways=[GatewayLink("m", "s")],
    )
    s = Session(world)
    vch = s.virtual_channel([
        s.channel("myrinet", members["m"]),
        s.channel("sci", members["s"] + gws),
    ], packet_size=16 << 10)
    srcs = ["m0", "m1"]
    datas = {name: payload(50_000, seed=i) for i, name in enumerate(srcs)}
    got = {}

    def sender(name):
        def proc():
            m = vch.endpoint(s.rank(name)).begin_packing(s.rank("s0"))
            yield m.pack(datas[name])
            yield m.end_packing()
        return proc

    def receiver():
        for _ in srcs:
            inc = yield vch.endpoint(s.rank("s0")).begin_unpacking()
            _ev, b = inc.unpack(50_000)
            yield inc.end_unpacking()
            got[inc.origin] = b.tobytes()

    for name in srcs:
        s.spawn(sender(name)())
    s.spawn(receiver())
    s.run()
    assert got == {s.rank(n): datas[n].tobytes() for n in srcs}


def test_bandwidth_asymmetry_reproduced():
    """System-level check of the paper's headline finding: Myrinet->SCI is
    substantially slower than SCI->Myrinet at large packet sizes (Figures 6
    vs 7), because the gateway's SCI PIO sends are preempted by Myrinet DMA
    receives on the PCI bus."""
    def direction(src, dst):
        w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                         "s0": ["sci"]})
        s = Session(w)
        vch = s.virtual_channel([
            s.channel("myrinet", ["m0", "gw"]),
            s.channel("sci", ["gw", "s0"]),
        ], packet_size=128 << 10)
        data = np.zeros(4_000_000, dtype=np.uint8)
        return 4_000_000 / transfer_once(s, vch, src, dst, data)["t"]

    bw_sci_to_myri = direction(2, 0)
    bw_myri_to_sci = direction(0, 2)
    assert bw_sci_to_myri > bw_myri_to_sci * 1.25
    assert 45 < bw_sci_to_myri < 66
    assert 30 < bw_myri_to_sci < 50
