"""The incremental solver epoch loop: bit-identity, crosscheck, locality.

The solver's incremental mode re-fills only the contention component that an
arrival or completion actually touched, and warm-starts everything else by
*not* settling rails whose rate did not change.  Because a component's
max-min rates are a pure function of its membership (never of remaining
bytes), the incremental schedule must be bit-identical to full recomputation
— not merely close.
"""

import math

import pytest

from repro.solver import max_min_rates, solve
from repro.solver.core import _application_flows
from repro.solver.network import SolverNetwork
from repro.solver.validate import (multirail_scenario, ping_scenario,
                                   traffic_scenario)


def _rails(net: SolverNetwork, scenario):
    rails = []
    for index, src, dst, nbytes, arrival in _application_flows(scenario):
        rails.extend(net.routed_flows(index, src, dst, nbytes,
                                      arrival=arrival))
    return rails

CELLS = [traffic_scenario("torus", 8),
         traffic_scenario("torus", 64),
         multirail_scenario(8 << 10, 2 << 20, 2),
         ping_scenario(64 << 10, 2 << 20, direction="b0->a0")]


@pytest.mark.parametrize("idx", range(len(CELLS)))
def test_incremental_is_bit_identical_to_full(idx):
    sc = CELLS[idx]
    inc = solve(sc)
    full = solve(sc, incremental=False)
    assert len(inc.flows) == len(full.flows)
    for a, b in zip(inc.flows, full.flows):
        assert a.index == b.index
        assert a.finish_us == b.finish_us        # bit-exact, not approx
        assert a.bandwidth == b.bandwidth
    # utilization integrals settle resources at mode-dependent times, so
    # the summation order differs — equal to float-reassociation noise.
    assert inc.utilization.keys() == full.utilization.keys()
    for key, u in inc.utilization.items():
        assert u == pytest.approx(full.utilization[key], rel=1e-9,
                                  abs=1e-12)


@pytest.mark.parametrize("idx", range(len(CELLS)))
def test_crosscheck_against_global_oracle(idx):
    # Every epoch's incremental rates are compared against a from-scratch
    # global max_min_rates solve; the worst deviation must sit far inside
    # the 1e-9 gate (observed ~1e-15, pure float-reassociation noise).
    result = solve(CELLS[idx], crosscheck=True)
    assert result.crosscheck_max_dev <= 1e-9


def test_summary_exposes_work_counters():
    summary = solve(traffic_scenario("torus", 64)).summary()
    assert summary["epoch_flows"] > 0
    assert summary["live_flow_epochs"] >= summary["epoch_flows"]
    assert 0.0 < summary["recompute_fraction"] <= 1.0


def test_incremental_does_strictly_less_work_when_components_split():
    # On a torus with many flows, some epochs touch only a sub-component;
    # the incremental counter must come in strictly under full mode's
    # all-active count while producing the same schedule.
    sc = traffic_scenario("torus", 64)
    inc = solve(sc)
    full = solve(sc, incremental=False)
    assert inc.live_flow_epochs == full.live_flow_epochs
    assert inc.epoch_flows < full.epoch_flows
    assert full.epoch_flows == full.live_flow_epochs


def test_component_size_histogram_accounts_for_all_work():
    result = solve(traffic_scenario("torus", 64))
    assert result.component_sizes              # non-empty dict
    assert sum(size * n for size, n in result.component_sizes.items()) \
        == result.epoch_flows


def test_interned_resource_ids_align_with_footprint():
    sc = traffic_scenario("torus", 8)
    net = SolverNetwork(sc)
    rails = _rails(net, sc)
    index = net.res_index
    assert rails
    for rf in rails:
        assert len(rf.res_ids) == len(rf.footprint)
        for rid, (key, _w) in zip(rf.res_ids, rf.footprint):
            assert index[key] == rid


def test_single_flow_rate_unaffected_by_mode():
    # Degenerate single-component case: the epoch loop never splits, yet
    # both modes must agree with the closed-form ceiling-limited rate.
    sc = ping_scenario(64 << 10, 2 << 20, direction="b0->a0")
    net = SolverNetwork(sc)
    flows = _rails(net, sc)
    assert len(flows) == 1
    caps = {key: net.resources[key].capacity for key in net.res_keys()}
    rates = max_min_rates(flows, caps)
    bw_inc = solve(sc).flows[0].bandwidth
    bw_full = solve(sc, incremental=False).flows[0].bandwidth
    assert bw_inc == bw_full
    assert math.isclose(bw_inc, min(rates[flows[0].id], flows[0].ceiling),
                        rel_tol=1e-6) or bw_inc <= rates[flows[0].id]
