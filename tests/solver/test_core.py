"""Fixed-point properties of the analytic solver, and its exact composition
with the closed-form §3.3.1 predictions."""

import math

import pytest

from repro.analysis.model import predict_forwarding, predict_multirail
from repro.hw.params import PROTOCOLS
from repro.solver import (RoutedFlow, SolverNetwork, max_min_rates, solve,
                          solve_bandwidth)
from repro.solver.validate import (multirail_scenario, ping_scenario,
                                   traffic_scenario)

MYRINET = PROTOCOLS["myrinet"]
SCI = PROTOCOLS["sci"]


def _flow(fid, ceiling, footprint, nbytes=1 << 20):
    return RoutedFlow(id=fid, nbytes=nbytes, arrival=0.0, ceiling=ceiling,
                      setup_us=0.0, footprint=tuple(footprint))


# -- max-min allocation properties -------------------------------------------

def test_rates_never_exceed_any_capacity():
    caps = {"wire": 10.0, "bus": 7.0}
    flows = [_flow(1, 8.0, [("wire", 1), ("bus", 1)]),
             _flow(2, 8.0, [("wire", 1), ("bus", 1)]),
             _flow(3, 8.0, [("wire", 1)])]
    rates = max_min_rates(flows, caps)
    for key, cap in caps.items():
        used = sum(rates[f.id] * w for f in flows
                   for k, w in f.footprint if k == key)
        assert used <= cap + 1e-6
    for f in flows:
        assert rates[f.id] <= f.ceiling + 1e-9


def test_identical_flows_get_identical_rates():
    caps = {"wire": 9.0}
    flows = [_flow(i, 100.0, [("wire", 1)]) for i in range(3)]
    rates = max_min_rates(flows, caps)
    assert rates[0] == pytest.approx(rates[1]) == pytest.approx(rates[2])
    assert sum(rates.values()) == pytest.approx(9.0)


def test_unconstrained_flow_reaches_its_ceiling():
    caps = {"wire": 100.0}
    rates = max_min_rates([_flow(1, 12.5, [("wire", 1)])], caps)
    assert rates[1] == pytest.approx(12.5)


def test_weighted_footprint_consumes_weight_times_rate():
    # A forwarded flow crosses the gateway bus twice: its max-min share of
    # a 10-unit bus against a weight-1 flow solves r*2 + r = 10.
    caps = {"bus": 10.0}
    flows = [_flow("fwd", 100.0, [("bus", 2)]),
             _flow("direct", 100.0, [("bus", 1)])]
    rates = max_min_rates(flows, caps)
    assert rates["fwd"] == pytest.approx(rates["direct"])
    assert rates["fwd"] == pytest.approx(10.0 / 3.0)


def test_adding_load_never_raises_existing_rates():
    caps = {"wire": 10.0, "bus": 6.0}
    base = [_flow(1, 8.0, [("wire", 1)]), _flow(2, 4.0, [("bus", 1)])]
    before = max_min_rates(base, caps)
    crowded = base + [_flow(3, 8.0, [("wire", 1), ("bus", 1)])]
    after = max_min_rates(crowded, caps)
    for f in base:
        assert after[f.id] <= before[f.id] + 1e-9


def test_bottleneck_flow_does_not_drag_unrelated_flows():
    caps = {"a": 2.0, "b": 100.0}
    flows = [_flow("slow", 50.0, [("a", 1), ("b", 1)]),
             _flow("fast", 50.0, [("b", 1)])]
    rates = max_min_rates(flows, caps)
    assert rates["slow"] == pytest.approx(2.0)
    assert rates["fast"] == pytest.approx(50.0)


# -- exact composition with the closed-form predictions ----------------------

def test_single_flow_chain_equals_predict_forwarding_exactly():
    packet = 64 << 10
    sc = ping_scenario(packet, 2 << 20, direction="b0->a0")
    net = SolverNetwork(sc)
    route = net.routes.route(net.rank["b0"], net.rank["a0"])
    predicted = predict_forwarding(SCI, MYRINET, packet)
    assert net.ceiling(route) == predicted.bandwidth
    assert net.steady_period(route) == predicted.period_us


def test_single_message_bandwidth_equals_model_including_setup():
    packet, message = 64 << 10, 2 << 20
    sc = ping_scenario(packet, message, direction="b0->a0")
    net = SolverNetwork(sc)
    route = net.routes.route(net.rank["b0"], net.rank["a0"])
    expected = message / (message / net.ceiling(route)
                          + net.setup_time(route))
    assert solve_bandwidth(sc) == pytest.approx(expected, rel=1e-12)


def test_striped_flow_equals_predict_multirail_exactly():
    packet, message = 8 << 10, 2 << 20
    for rails in (2, 3):
        sc = multirail_scenario(packet, message, rails)
        model = predict_multirail(MYRINET, SCI, packet, rails=rails,
                                  message=message)
        assert solve_bandwidth(sc) == pytest.approx(model.bandwidth,
                                                    rel=1e-12)


# -- whole-scenario solve ----------------------------------------------------

def test_solve_traffic_scenario_summary_shape():
    sc = traffic_scenario("torus", 8)
    result = solve(sc)
    summary = result.summary()
    assert summary["mode"] == "solver"
    assert summary["flows"] == summary["completed"] == 8
    assert summary["p50_fct_us"] <= summary["p99_fct_us"] \
        <= summary["max_fct_us"]
    assert summary["duration_us"] > 0
    assert math.isfinite(summary["events_per_mb"])
    # every flow finishes after it arrives, with a positive rate
    for f in result.flows:
        assert f.finish_us > f.arrival
        assert f.bandwidth > 0


def test_solve_utilization_bounded_by_one():
    result = solve(traffic_scenario("torus", 16))
    for key, u in result.utilization.items():
        assert -1e-9 <= u <= 1.0 + 1e-6, (key, u)
    assert result.link_utilization()    # wire segments present


def test_more_offered_load_never_shortens_the_run():
    light = solve(traffic_scenario("torus", 8)).summary()
    heavy = solve(traffic_scenario("torus", 64)).summary()
    assert heavy["duration_us"] >= light["duration_us"]


def test_solve_bandwidth_rejects_multi_flow_scenarios():
    with pytest.raises(ValueError):
        solve_bandwidth(traffic_scenario("torus", 8))


def test_solve_rejects_empty_scenarios():
    from repro.scenario import Scenario, Topology
    sc = Scenario(seed=0,
                  topology=Topology(kind="torus", protocols=("myrinet",),
                                    dims=(2, 2)))
    with pytest.raises(ValueError):
        solve(sc)
