"""The solver-vs-DES validation harness: comparator logic and a live
strict-family spot check."""

import json

import pytest

from repro.solver import validate as sv


@pytest.fixture
def baseline():
    return {
        "strict_limit": 0.05,
        "slack": 0.005,
        "min_speedup": 100.0,
        "families": {
            "fig6": {"max_rel_err": 0.032, "strict": True},
            "traffic": {"max_rel_err": 0.75, "strict": False},
        },
    }


def _result(fig6=0.03, traffic=0.5, speedup=150.0):
    def fam(err, strict):
        return {"strict": strict, "max_rel_err": err,
                "cells": [{"name": "c", "des": 1.0, "solver": 1.0 + err,
                           "rel_err": err}]}
    return {"families": {"fig6": fam(fig6, True),
                         "traffic": fam(traffic, False)},
            "max_strict_rel_err": fig6, "speedup": speedup,
            "overall_speedup": speedup / 3,
            "des_seconds": 1.0, "solver_seconds": 1.0 / speedup}


def test_within_floors_passes(baseline):
    assert sv.compare_validate(_result(), baseline) == []


def test_strict_limit_enforced_even_with_a_loose_floor(baseline):
    # A committed floor above the strict limit cannot waive the 5% claim.
    baseline["families"]["fig6"]["max_rel_err"] = 0.10
    failures = sv.compare_validate(_result(fig6=0.06), baseline)
    assert any("strict" in f for f in failures)


def test_drift_beyond_committed_floor_fails(baseline):
    failures = sv.compare_validate(_result(fig6=0.045), baseline)
    assert any("committed floor" in f for f in failures)


def test_loose_family_floor_enforced_without_strict_limit(baseline):
    assert sv.compare_validate(_result(traffic=0.74), baseline) == []
    failures = sv.compare_validate(_result(traffic=0.90), baseline)
    assert failures and all("strict solver==DES" not in f for f in failures)


def test_missing_family_fails(baseline):
    result = _result()
    del result["families"]["traffic"]
    failures = sv.compare_validate(result, baseline)
    assert any("missing" in f for f in failures)


def test_speedup_commitment_enforced(baseline):
    failures = sv.compare_validate(_result(speedup=40.0), baseline)
    assert any("speedup" in f for f in failures)


def test_write_baseline_commits_measured_errors(tmp_path):
    path = tmp_path / "solver_validate.json"
    sv.write_validate_baseline(_result(fig6=0.021), path)
    data = json.loads(path.read_text())
    assert data["families"]["fig6"] == {"max_rel_err": 0.021, "strict": True}
    assert data["strict_limit"] == sv.STRICT_LIMIT
    assert data["min_speedup"] == sv.MIN_SPEEDUP
    # commitments raised by hand survive a refresh
    data["min_speedup"] = 250.0
    path.write_text(json.dumps(data))
    sv.write_validate_baseline(_result(fig6=0.025), path)
    data = json.loads(path.read_text())
    assert data["min_speedup"] == 250.0
    assert data["families"]["fig6"]["max_rel_err"] == 0.025


def test_committed_baseline_is_strict_json_and_within_limits():
    data = json.loads(sv.DEFAULT_VALIDATE_BASELINE.read_text())
    for name, fam in data["families"].items():
        if fam["strict"]:
            assert fam["max_rel_err"] <= data["strict_limit"], name


def test_fig5_cell_validates_live():
    """One live strict cell end to end: DES vs solver within the limit —
    the acceptance criterion on the paper's balanced configuration."""
    from repro.solver import solve_bandwidth
    des = sv._des_ping(64 << 10, 2 << 20, "b0->a0")
    sol = solve_bandwidth(sv.ping_scenario(64 << 10, 2 << 20, "b0->a0"))
    assert abs(sol - des) / des <= sv.STRICT_LIMIT


def test_scenario_builders_validate():
    for sc in (sv.ping_scenario(8 << 10, 1 << 20),
               sv.multirail_scenario(8 << 10, 1 << 20, 3),
               sv.traffic_scenario("torus", 4),
               sv.traffic_scenario("fat_tree", 4)):
        sc.validate()
