"""Unit tests for hardware parameter presets."""

import pytest

from repro.hw import (FAST_ETHERNET, GIGABIT_TCP, MYRINET, PCIParams,
                      PROTOCOLS, SBP, SCI, scaled)
from repro.sim.fluid import DMA, PIO


def test_pci_raw_bandwidth_is_132():
    assert PCIParams().raw_bandwidth == pytest.approx(132.0)


def test_pci_capacity_below_raw():
    p = PCIParams()
    assert p.capacity < p.raw_bandwidth
    assert p.capacity == pytest.approx(p.raw_bandwidth * p.duplex_efficiency)


def test_protocol_registry_complete():
    # other test modules may register ablation variants; the builtins must
    # always be present
    assert {"myrinet", "sci", "fast_ethernet",
            "gigabit_tcp", "sbp"} <= set(PROTOCOLS)


def test_myrinet_is_dynamic_dma():
    assert MYRINET.tx_kind == DMA and MYRINET.rx_kind == DMA
    assert not MYRINET.tx_static and not MYRINET.rx_static


def test_sci_send_is_pio_and_static():
    """The paper's §3.4.1 finding hinges on these two facts."""
    assert SCI.tx_kind == PIO
    assert SCI.rx_kind == DMA
    assert SCI.tx_static and SCI.rx_static


def test_sbp_static_both_ways():
    assert SBP.tx_static and SBP.rx_static


def test_sci_cheaper_than_myrinet_for_small_fragments():
    """SCI wins small messages; Myrinet wins large (§3.2.2)."""
    def t(p, size):
        return p.latency + p.tx_overhead + p.rx_overhead + size / p.host_peak

    assert t(SCI, 1024) < t(MYRINET, 1024)
    assert t(SCI, 1 << 20) > t(MYRINET, 1 << 20)


def test_crossover_is_in_the_kb_range():
    def t(p, size):
        return p.latency + p.tx_overhead + p.rx_overhead + size / p.host_peak

    sizes = [1 << k for k in range(8, 22)]
    cross = [s for s in sizes if t(SCI, s) >= t(MYRINET, s)]
    assert cross, "Myrinet should overtake SCI somewhere"
    assert 4 << 10 <= cross[0] <= 256 << 10


def test_host_peaks_respect_practical_pci_limit():
    for p in PROTOCOLS.values():
        assert p.host_peak <= 66.0


def test_fast_ethernet_much_slower():
    assert FAST_ETHERNET.host_peak < 15
    assert GIGABIT_TCP.host_peak < MYRINET.host_peak


def test_static_for():
    assert SCI.static_for("tx") and SCI.static_for("rx")
    assert not MYRINET.static_for("tx")
    with pytest.raises(ValueError):
        SCI.static_for("sideways")


def test_scaled_override():
    fast = scaled(MYRINET, latency=1.0)
    assert fast.latency == 1.0
    assert fast.host_peak == MYRINET.host_peak
    assert MYRINET.latency != 1.0   # original untouched
