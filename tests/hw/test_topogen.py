"""Topology generator properties: determinism, connectivity, gateways,
and parallel-rail availability on generated networks."""

import itertools

import pytest

from repro.hw import fat_tree, hierarchy, torus
from repro.hw.topogen import GeneratedTopology


def _names(topo: GeneratedTopology) -> list[str]:
    return [name for name, _nics in topo.nodes]


def _graph(topo: GeneratedTopology) -> dict[str, set[str]]:
    adj: dict[str, set[str]] = {n: set() for n in _names(topo)}
    for ch in topo.channels:
        for a, b in itertools.combinations(ch.members, 2):
            adj[a].add(b)
            adj[b].add(a)
    return adj


def _connected(topo: GeneratedTopology) -> bool:
    adj = _graph(topo)
    names = _names(topo)
    seen = {names[0]}
    frontier = [names[0]]
    while frontier:
        nxt = []
        for cur in frontier:
            for n in adj[cur]:
                if n not in seen:
                    seen.add(n)
                    nxt.append(n)
        frontier = nxt
    return len(seen) == len(names)


GENERATORS = [
    lambda: hierarchy(clusters=3, cluster_size=4, gateways_per_boundary=2),
    lambda: hierarchy(clusters=5, cluster_size=2, gateways_per_boundary=1,
                      protocols=("myrinet", "sci", "gigabit_tcp")),
    lambda: fat_tree(leaves=4, spines=2, hosts_per_leaf=3),
    lambda: torus(dims=(4, 4)),
    lambda: torus(dims=(3, 3, 3)),
    lambda: torus(dims=(2, 5)),
]


@pytest.mark.parametrize("gen", GENERATORS)
def test_generation_is_deterministic(gen):
    a, b = gen(), gen()
    assert a.nodes == b.nodes
    assert a.channels == b.channels
    assert a.endpoints == b.endpoints
    assert a.gateways == b.gateways


@pytest.mark.parametrize("gen", GENERATORS)
def test_generated_topologies_are_connected(gen):
    topo = gen()
    assert _connected(topo)


@pytest.mark.parametrize("gen", GENERATORS)
def test_nic_indices_match_world_builder(gen):
    # Each member's adapter_index must equal the number of same-protocol
    # NICs added before it — the World.add_adapter numbering.
    topo = gen()
    counts: dict[tuple[str, str], int] = {}
    for ch in topo.channels:
        for member in ch.members:
            key = (member, ch.protocol)
            assert ch.adapter_index[member] == counts.get(key, 0)
            counts[key] = counts.get(key, 0) + 1


def test_hierarchy_gateway_placement():
    topo = hierarchy(clusters=3, cluster_size=4, gateways_per_boundary=2)
    # 2 boundaries x 2 gateways; every gateway sits in exactly 2 channels.
    assert len(topo.gateways) == 4
    for gw in topo.gateways:
        spanning = [c for c in topo.channels if gw in c.members]
        assert len(spanning) == 2
    # endpoints and gateways partition the node set
    assert set(topo.endpoints) | set(topo.gateways) == set(_names(topo))
    assert not set(topo.endpoints) & set(topo.gateways)


def test_fat_tree_shape():
    topo = fat_tree(leaves=4, spines=2, hosts_per_leaf=3)
    assert len(topo.endpoints) == 12
    # leaf switches span their leaf channel plus one uplink per spine
    assert "lsw0" in topo.gateways and "ssw0" in topo.gateways
    assert topo.node_count == 12 + 4 + 2


def test_torus_every_node_is_endpoint_and_gateway():
    topo = torus(dims=(4, 4))
    assert topo.node_count == 16
    assert set(topo.endpoints) == set(_names(topo))
    # interior forwarding: every torus node joins its 4 per-axis links
    assert set(topo.gateways) == set(_names(topo))
    for node in _names(topo):
        assert len([c for c in topo.channels if node in c.members]) == 4


def test_torus_size2_axis_has_no_duplicate_links():
    topo = torus(dims=(2, 3))
    for a, b in itertools.combinations(topo.channels, 2):
        assert set(a.members) != set(b.members) or a.protocol != b.protocol


def test_torus_offers_disjoint_rails():
    from repro.madeleine import Session
    from repro.routing.striping import disjoint_routes
    from repro.scenario import MessageSpec, Scenario, Topology

    sc = Scenario(seed=0, topology=Topology(kind="torus",
                                            protocols=("myrinet",),
                                            dims=(4, 4)),
                  messages=(MessageSpec("t0_0", "t2_2", 1024),))
    session = Session.from_scenario(sc)
    vch = session.virtual_channels[0]
    src = session.rank("t0_0")
    dst = session.rank("t2_2")
    rails = disjoint_routes(vch.routes.all_routes(src, dst), max_rails=4)
    assert len(rails) >= 2
    for rail in rails:
        assert rail[0].src == src and rail[-1].dst == dst
