"""Unit tests for world/topology construction."""

import pytest

from repro.hw import (ClusterSpec, GatewayLink, NodeParams, World,
                      build_cluster_of_clusters, build_world)


def test_build_world_ranks_follow_insertion_order():
    w = build_world({"x": ["myrinet"], "y": ["sci"], "z": []})
    assert w.node("x").rank == 0
    assert w.node("y").rank == 1
    assert w.node("z").rank == 2
    assert w.node(1).name == "y"


def test_duplicate_node_name_rejected():
    w = World()
    w.add_node("a")
    with pytest.raises(ValueError):
        w.add_node("a")


def test_has_protocol():
    w = build_world({"a": ["myrinet", "sci"]})
    n = w.node("a")
    assert n.has_protocol("myrinet") and n.has_protocol("sci")
    assert not n.has_protocol("sbp")


def test_memcpy_time():
    w = build_world({"a": []})
    node = w.node("a")
    bw = node.params.memcpy_bandwidth
    assert node.memcpy_time(1000) == pytest.approx(1000 / bw)


def test_memcpy_advances_clock():
    w = build_world({"a": []})
    node = w.node("a")
    done = {}

    def proc():
        yield from node.memcpy(500)
        done["t"] = w.sim.now

    w.sim.process(proc())
    w.run()
    assert done["t"] == pytest.approx(500 / node.params.memcpy_bandwidth)


def test_pci_resource_per_node():
    w = build_world({"a": [], "b": []})
    assert w.node("a").pci is not w.node("b").pci
    assert w.node("a").pci.capacity == pytest.approx(
        NodeParams().pci.capacity)


def test_cluster_of_clusters_paper_shape():
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("myri", "myrinet", 2),
                  ClusterSpec("sci", "sci", 2)],
        gateways=[GatewayLink("myri", "sci")],
    )
    assert members == {"myri": ["myri0", "myri1"], "sci": ["sci0", "sci1"]}
    assert gws == ["myri1"]
    gw = world.node("myri1")
    assert gw.has_protocol("myrinet") and gw.has_protocol("sci")
    assert not world.node("myri0").has_protocol("sci")


def test_cluster_of_clusters_extra_protocols():
    world, members, _ = build_cluster_of_clusters(
        clusters=[ClusterSpec("c", "myrinet", 2,
                              extra_protocols=("fast_ethernet",)),
                  ClusterSpec("d", "sci", 1)],
        gateways=[GatewayLink("c", "d")],
    )
    assert world.node("c0").has_protocol("fast_ethernet")


def test_gateway_unknown_cluster_rejected():
    with pytest.raises(ValueError):
        build_cluster_of_clusters(
            clusters=[ClusterSpec("a", "myrinet", 1)],
            gateways=[GatewayLink("a", "nope")],
        )


def test_three_cluster_chain_has_two_gateways():
    world, members, gws = build_cluster_of_clusters(
        clusters=[ClusterSpec("a", "myrinet", 2),
                  ClusterSpec("b", "sci", 2),
                  ClusterSpec("c", "sbp", 2)],
        gateways=[GatewayLink("a", "b"), GatewayLink("b", "c")],
    )
    assert gws == ["a1", "b1"]
    assert world.node("b1").has_protocol("sbp")
