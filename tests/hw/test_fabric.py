"""Unit tests for NICs and the rendezvous fabric."""

import numpy as np
import pytest

from repro.hw import (FRAGMENT_HEADER_BYTES, MYRINET, TransferError,
                      build_world)
from repro.memory import Buffer
from tests.conftest import payload


def two_nodes(proto="myrinet"):
    w = build_world({"a": [proto], "b": [proto]})
    return w, w.node("a").nic(proto), w.node("b").nic(proto)


def test_fragment_moves_payload_exactly():
    w, na, nb = two_nodes()
    data = Buffer.wrap(payload(5000))
    dst = Buffer.alloc(5000)
    res = {}

    def snd():
        yield na.send(nb, "t", data)

    def rcv():
        meta, n = yield w.fabric.post_recv(nb, "t", dst)
        res["n"] = n
        res["meta"] = meta

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    assert res["n"] == 5000
    assert (dst.data == data.data).all()


def test_fragment_timing_matches_model():
    w, na, nb = two_nodes()
    data = Buffer.wrap(payload(65536))
    dst = Buffer.alloc(65536)
    res = {}

    def snd():
        yield na.send(nb, "t", data)
        res["tx"] = w.sim.now

    def rcv():
        yield w.fabric.post_recv(nb, "t", dst)
        res["rx"] = w.sim.now

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    p = MYRINET
    expect_tx = (p.tx_overhead + p.latency
                 + (65536 + FRAGMENT_HEADER_BYTES) / p.host_peak)
    assert res["tx"] == pytest.approx(expect_tx)
    assert res["rx"] == pytest.approx(expect_tx + p.rx_overhead)


def test_rendezvous_blocks_sender_until_post():
    w, na, nb = two_nodes()
    data = Buffer.wrap(payload(1000))
    res = {}

    def snd():
        yield na.send(nb, "t", data)
        res["tx"] = w.sim.now

    def rcv():
        yield w.sim.timeout(500)   # receiver late
        yield w.fabric.post_recv(nb, "t", Buffer.alloc(1000))
        res["rx"] = w.sim.now

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    assert res["tx"] > 500   # sender waited for the posted receive


def test_nic_serializes_transfers():
    """Two back-to-back fragments take twice the time of one (single engine)."""
    w, na, nb = two_nodes()
    res = {}

    def snd():
        e1 = na.send(nb, "t", Buffer.wrap(payload(65536, 1)))
        e2 = na.send(nb, "t", Buffer.wrap(payload(65536, 2)))
        yield e1
        res["t1"] = w.sim.now
        yield e2
        res["t2"] = w.sim.now

    def rcv():
        yield w.fabric.post_recv(nb, "t", Buffer.alloc(65536))
        yield w.fabric.post_recv(nb, "t", Buffer.alloc(65536))

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    # back-to-back: the engine serializes; the receiver posts its second
    # slot rx_overhead after the first delivery, hence the small gap
    assert res["t2"] == pytest.approx(2 * res["t1"] + MYRINET.rx_overhead,
                                      rel=1e-6)


def test_in_order_delivery_per_tag():
    w, na, nb = two_nodes()
    seen = []

    def snd():
        for i in range(5):
            yield na.send(nb, "t", Buffer.wrap(np.full(10, i, dtype=np.uint8)))

    def rcv():
        for _ in range(5):
            buf = Buffer.alloc(10)
            yield w.fabric.post_recv(nb, "t", buf)
            seen.append(int(buf.data[0]))

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    assert seen == [0, 1, 2, 3, 4]


def test_tags_are_independent():
    w, na, nb = two_nodes()
    res = {}

    def snd():
        yield na.send(nb, "tag2", Buffer.wrap(np.full(4, 2, dtype=np.uint8)))

    def rcv():
        b1 = Buffer.alloc(4)
        ev1 = w.fabric.post_recv(nb, "tag1", b1)
        b2 = Buffer.alloc(4)
        yield w.fabric.post_recv(nb, "tag2", b2)
        res["got2"] = int(b2.data[0])
        res["ev1_pending"] = not ev1.triggered

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    assert res["got2"] == 2
    assert res["ev1_pending"]


def test_oversized_fragment_fails_both_sides():
    w, na, nb = two_nodes()
    errors = []

    def snd():
        try:
            yield na.send(nb, "t", Buffer.wrap(payload(100)))
        except TransferError as exc:
            errors.append(("tx", str(exc)))

    def rcv():
        try:
            yield w.fabric.post_recv(nb, "t", Buffer.alloc(50))
        except TransferError:
            errors.append(("rx", None))

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    assert {e[0] for e in errors} == {"tx", "rx"}


def test_cross_protocol_send_rejected():
    w = build_world({"a": ["myrinet"], "b": ["sci"]})
    na = w.node("a").nic("myrinet")
    nb = w.node("b").nic("sci")
    with pytest.raises(TransferError):
        na.send(nb, "t", Buffer.alloc(4))


def test_loopback_send_rejected():
    w, na, _nb = two_nodes()
    with pytest.raises(TransferError):
        na.send(na, "t", Buffer.alloc(4))


def test_metadata_only_fragment():
    w, na, nb = two_nodes()
    res = {}

    def snd():
        yield na.send(nb, "t", None, meta={"k": 7}, nbytes=8)

    def rcv():
        meta, n = yield w.fabric.post_recv(nb, "t", None, capacity=8)
        res.update(meta=meta, n=n)

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    assert res["meta"]["k"] == 7 and res["n"] == 8


def test_static_pools_created_per_discipline():
    w = build_world({"a": ["sci", "myrinet"]})
    sci = w.node("a").nic("sci")
    myri = w.node("a").nic("myrinet")
    assert sci.tx_pool is not None and sci.rx_pool is not None
    assert myri.tx_pool is None and myri.rx_pool is None


def test_trace_records_transfers():
    w, na, nb = two_nodes()

    def snd():
        yield na.send(nb, "t", Buffer.wrap(payload(256)))

    def rcv():
        yield w.fabric.post_recv(nb, "t", Buffer.alloc(256))

    w.sim.process(snd())
    w.sim.process(rcv())
    w.run()
    recs = w.trace.query(category="xfer", event="fragment")
    assert len(recs) == 1
    assert recs[0]["nbytes"] == 256
    assert recs[0]["proto"] == "myrinet"


def test_multiple_adapters_same_protocol():
    w = build_world({"a": ["myrinet", "myrinet"], "b": ["myrinet"]})
    assert w.node("a").nic("myrinet", 0) is not w.node("a").nic("myrinet", 1)
    with pytest.raises(KeyError):
        w.node("a").nic("myrinet", 2)
