"""Tests for the application-level store-and-forward baseline."""

import pytest

from repro.baselines import AppLevelForwarder, app_recv, app_send
from repro.hw import build_world
from repro.madeleine import Session
from repro.routing import RouteTable
from tests.conftest import payload, transfer_once


def setup_chain():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    fwd = AppLevelForwarder([myri, sci], gw_rank=1)
    rt = RouteTable([myri, sci])
    return w, s, myri, sci, fwd, rt


def test_relay_delivers_payload():
    w, s, myri, sci, fwd, rt = setup_chain()
    data = payload(100_000)
    got = {}

    def snd():
        yield app_send(rt, 0, 2, data)

    def rcv():
        buf = yield from app_recv(sci, 2)
        got["data"] = buf.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run(until=10_000_000)
    assert got["data"] == data.tobytes()
    assert fwd.messages_forwarded == 1


def test_relay_charges_a_copy():
    w, s, myri, sci, fwd, rt = setup_chain()
    data = payload(50_000)

    def snd():
        yield app_send(rt, 0, 2, data)

    def rcv():
        yield from app_recv(sci, 2)

    s.spawn(snd()); s.spawn(rcv()); s.run(until=10_000_000)
    by = w.accounting.by_label()
    assert by["baseline.app_copy"][1] == 50_000


def test_relay_slower_than_gtm_forwarding():
    """The §2.2.2 argument: app-level forwarding loses to the integrated
    mechanism (no pipelining + extra copies)."""
    data = payload(1_000_000)
    # baseline
    w, s, myri, sci, fwd, rt = setup_chain()
    t_app = {}

    def snd():
        yield app_send(rt, 0, 2, data)

    def rcv():
        yield from app_recv(sci, 2)
        t_app["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run(until=10_000_000)

    # integrated GTM forwarding, same topology and packet granularity
    w2 = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                      "s0": ["sci"]})
    s2 = Session(w2)
    vch = s2.virtual_channel([
        s2.channel("myrinet", ["m0", "gw"]),
        s2.channel("sci", ["gw", "s0"]),
    ], packet_size=64 << 10)
    t_gtm = transfer_once(s2, vch, 0, 2, data)["t"]
    assert t_gtm < t_app["t"] * 0.75, (t_gtm, t_app["t"])


def test_wrong_destination_detected():
    w, s, myri, sci, fwd, rt = setup_chain()

    def snd():
        yield app_send(rt, 0, 2, payload(100))

    def rcv_wrong():
        # gw relays to rank 2 on the sci channel; receiving at rank 1's own
        # app with the 2-addressed envelope must raise.
        yield from app_recv(sci, 2)

    captured = []

    def rcv_bad_claim():
        try:
            yield from app_recv(myri, 0)
        except RuntimeError as exc:
            captured.append(str(exc))

    s.spawn(snd()); s.spawn(rcv_wrong())
    s.run(until=10_000_000)


def test_forwarder_needs_two_channels():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b"])
    with pytest.raises(ValueError):
        AppLevelForwarder([ch], gw_rank=0)
