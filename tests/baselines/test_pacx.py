"""Tests for the PACX-style TCP coupling baseline."""

from repro.baselines import app_recv, app_send, build_pacx_coupling
from repro.hw import build_world
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def build():
    w = build_world({
        "m0": ["myrinet"],
        "md": ["myrinet", "gigabit_tcp"],   # cluster A daemon
        "sd": ["sci", "gigabit_tcp"],       # cluster B daemon
        "s0": ["sci"],
    })
    s = Session(w)
    pacx = build_pacx_coupling(s, ["m0", "md"], "myrinet",
                               ["s0", "sd"], "sci")
    return w, s, pacx


def test_pacx_routes_via_both_daemons():
    _w, s, pacx = build()
    s0 = s.rank("s0")                 # rank 3 (insertion order)
    route = pacx.routes.route(0, s0)  # m0 -> s0
    ranks = [route[0].src] + [h.dst for h in route]
    assert ranks == [0, 1, 2, 3]      # m0 -> md -> sd -> s0
    assert route[1].channel is pacx.inter


def test_pacx_end_to_end_delivery():
    w, s, pacx = build()
    data = payload(200_000)
    got = {}

    def snd():
        yield app_send(pacx.routes, 0, s.rank("s0"), data)

    def rcv():
        buf = yield from app_recv(pacx.intra_b, s.rank("s0"))
        got["data"] = buf.tobytes()
        got["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run(until=100_000_000)
    assert got["data"] == data.tobytes()
    assert pacx.relays[0].messages_forwarded == 1
    assert pacx.relays[1].messages_forwarded == 1


def test_pacx_much_slower_than_native_forwarding():
    """The paper's §1 claim: TCP glue cannot exploit gigabit-class
    inter-cluster links; native multi-device forwarding can."""
    data = payload(1_000_000)
    w, s, pacx = build()
    out = {}

    def snd():
        yield app_send(pacx.routes, 0, s.rank("s0"), data)

    def rcv():
        yield from app_recv(pacx.intra_b, s.rank("s0"))
        out["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run(until=100_000_000)
    bw_pacx = len(data) / out["t"]

    w2 = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                      "s0": ["sci"]})
    s2 = Session(w2)
    vch = s2.virtual_channel([
        s2.channel("myrinet", ["m0", "gw"]),
        s2.channel("sci", ["gw", "s0"]),
    ], packet_size=64 << 10)
    bw_native = len(data) / transfer_once(s2, vch, 0, 2, data)["t"]
    assert bw_native > 1.5 * bw_pacx, (bw_native, bw_pacx)
