"""Unit tests for the synchronization primitives."""

import pytest

from repro.sim import Barrier, Mutex, Queue, Semaphore, Signal


# -- Semaphore ----------------------------------------------------------------

def test_semaphore_immediate_acquire(sim):
    sem = Semaphore(sim, 2)
    done = []

    def proc():
        yield sem.acquire()
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0.0]
    assert sem.value == 1


def test_semaphore_blocks_then_wakes_fifo(sim):
    sem = Semaphore(sim, 1)
    order = []

    def holder():
        yield sem.acquire()
        yield sim.timeout(10)
        sem.release()

    def waiter(tag, delay):
        yield sim.timeout(delay)
        yield sem.acquire()
        order.append((tag, sim.now))
        sem.release()

    sim.process(holder())
    sim.process(waiter("a", 1))
    sim.process(waiter("b", 2))
    sim.run()
    assert order == [("a", 10.0), ("b", 10.0)]


def test_semaphore_try_acquire(sim):
    sem = Semaphore(sim, 1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_negative_value_rejected(sim):
    with pytest.raises(ValueError):
        Semaphore(sim, -1)


def test_semaphore_release_increments_when_no_waiters(sim):
    sem = Semaphore(sim, 0)
    sem.release()
    assert sem.value == 1


# -- Mutex ------------------------------------------------------------------

def test_mutex_exclusion(sim):
    m = Mutex(sim)
    trace = []

    def proc(tag):
        yield m.acquire()
        trace.append((tag, "in", sim.now))
        yield sim.timeout(5)
        trace.append((tag, "out", sim.now))
        m.release()

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert trace == [("a", "in", 0.0), ("a", "out", 5.0),
                     ("b", "in", 5.0), ("b", "out", 10.0)]


def test_mutex_release_when_unheld_raises(sim):
    m = Mutex(sim)
    with pytest.raises(RuntimeError):
        m.release()


def test_mutex_locked_property(sim):
    m = Mutex(sim)
    assert not m.locked
    assert m.try_acquire()
    assert m.locked


# -- Queue --------------------------------------------------------------------

def test_queue_fifo_order(sim):
    q = Queue(sim)
    got = []

    def producer():
        for i in range(5):
            yield q.put(i)

    def consumer():
        for _ in range(5):
            v = yield q.get()
            got.append(v)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_queue_get_blocks_until_put(sim):
    q = Queue(sim)
    got = []

    def consumer():
        v = yield q.get()
        got.append((v, sim.now))

    def producer():
        yield sim.timeout(4)
        yield q.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 4.0)]


def test_queue_capacity_backpressure(sim):
    q = Queue(sim, capacity=1)
    puts = []

    def producer():
        for i in range(3):
            yield q.put(i)
            puts.append((i, sim.now))

    def consumer():
        for _ in range(3):
            yield sim.timeout(10)
            yield q.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # item0 enters at t=0; item1 must wait for the first get at t=10, etc.
    assert puts == [(0, 0.0), (1, 10.0), (2, 20.0)]


def test_queue_try_get(sim):
    q = Queue(sim)
    ok, item = q.try_get()
    assert not ok and item is None
    q.put("v")
    ok, item = q.try_get()
    assert ok and item == "v"


def test_queue_invalid_capacity(sim):
    with pytest.raises(ValueError):
        Queue(sim, capacity=0)


def test_queue_len(sim):
    q = Queue(sim)
    q.put(1)
    q.put(2)
    assert len(q) == 2


# -- Barrier --------------------------------------------------------------------

def test_barrier_releases_all_at_once(sim):
    b = Barrier(sim, 3)
    arrivals = []

    def proc(tag, delay):
        yield sim.timeout(delay)
        gen = yield b.wait()
        arrivals.append((tag, sim.now, gen))

    sim.process(proc("a", 1))
    sim.process(proc("b", 5))
    sim.process(proc("c", 3))
    sim.run()
    assert sorted(arrivals) == [("a", 5.0, 0), ("b", 5.0, 0), ("c", 5.0, 0)]


def test_barrier_reusable_generations(sim):
    b = Barrier(sim, 2)
    gens = []

    def proc():
        for _ in range(3):
            g = yield b.wait()
            gens.append(g)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    assert sorted(gens) == [0, 0, 1, 1, 2, 2]


def test_barrier_invalid_parties(sim):
    with pytest.raises(ValueError):
        Barrier(sim, 0)


# -- Signal --------------------------------------------------------------------

def test_signal_latched_set(sim):
    s = Signal(sim)
    s.set()
    got = []

    def proc():
        yield s.wait()
        got.append(sim.now)

    sim.process(proc())
    sim.run()
    assert got == [0.0]
    assert s.is_set


def test_signal_fire_wakes_current_waiters_only(sim):
    s = Signal(sim)
    got = []

    def waiter(tag):
        yield s.wait()
        got.append(tag)

    def firer():
        yield sim.timeout(1)
        s.fire()

    sim.process(waiter("early"))
    sim.process(firer())
    sim.run()
    assert got == ["early"]
    assert not s.is_set


def test_signal_clear(sim):
    s = Signal(sim)
    s.set()
    s.clear()
    assert not s.is_set
