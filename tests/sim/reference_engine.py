"""Verbatim snapshot of the PRE-optimization discrete-event kernel.

This is the kernel as it stood before the PR 3 hot-path pass (lazy
cancellation, pooled timeouts, batched dispatch).  The schedule-identity
tests run the same scenarios on this module and on :mod:`repro.sim.engine`
and assert the dispatch sequences are bit-identical.  Do not "fix" or
optimize this file — its whole value is that it stays frozen.

Original module docstring follows.

Deterministic discrete-event simulation kernel.

The kernel is a small, simpy-flavoured engine: simulation *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed when
those events trigger.  Simulated time is a float in **microseconds**; all
bandwidth figures elsewhere in the library are therefore bytes/µs, which is
numerically identical to MB/s.

Determinism: the event heap is ordered by ``(time, priority, sequence)``
where ``sequence`` is a global monotonic counter, so two runs of the same
program always produce the same schedule.  Nothing in the kernel consults
wall-clock time or random state.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.errors import DeadlockError, ProcessCrashed, SchedulingError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]

_UNSET = object()

#: Heap priorities: lower runs first among events scheduled for the same time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LATE = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which enqueues it on the simulator heap.  When the heap pops
    it, all registered callbacks run (in registration order).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: callbacks invoked with the event once it is processed; set to
        #: ``None`` after processing (late registrations run immediately).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SchedulingError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _UNSET:
            raise SchedulingError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        if self._ok is not None:
            raise SchedulingError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        if self._ok is not None:
            raise SchedulingError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    # -- waiting ----------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately so late waiters still wake.
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        label = f" {self.name}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` µs after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=name)
        self._ok = True
        self._value = value
        sim._enqueue(sim.now + delay, PRIORITY_NORMAL, self)


class Initialize(Event):
    """Internal: kicks a freshly created process at the current instant."""

    __slots__ = ()

    def __init__(self, sim: "Simulator") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        sim._enqueue(sim.now, PRIORITY_URGENT, self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that triggers when the generator returns
    (value = the generator's return value) or raises (event fails), so
    processes can wait for each other simply by yielding them.
    """

    __slots__ = ("gen", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._target: Optional[Event] = None
        init = Initialize(sim)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            if event._ok:
                next_ev = self.gen.send(event._value)
            else:
                event._defused = True
                next_ev = self.gen.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._ok = False
            self._value = exc
            self.sim._enqueue(self.sim.now, PRIORITY_NORMAL, self)
            self.sim._crashes.append(self)
            return
        self.sim._active_process = None
        if not isinstance(next_ev, Event):
            exc = TypeError(
                f"process {self.name!r} yielded {next_ev!r}; processes must yield Event objects"
            )
            self.gen.close()
            self._ok = False
            self._value = exc
            self.sim._enqueue(self.sim.now, PRIORITY_NORMAL, self)
            self.sim._crashes.append(self)
            return
        self._target = next_ev
        next_ev.add_callback(self._resume)


class AllOf(Event):
    """Triggers when every child event has triggered.

    Value is the list of child values (in the given order).  Fails as soon
    as any child fails.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._check)

    def _check(self, ev: Event) -> None:
        if self.triggered:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers; value = (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=idx: self._check(i, e))

    def _check(self, idx: int, ev: Event) -> None:
        if self.triggered:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self.succeed((idx, ev._value))


class Simulator:
    """The event loop: owns the clock, the heap, and process bookkeeping."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._crashes: list[Process] = []

    # -- event construction -------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, at: float, priority: int, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event off the heap."""
        at, _prio, _seq, event = heapq.heappop(self._heap)
        if at < self.now - 1e-9:
            raise SchedulingError(f"time went backwards: {at} < {self.now}")
        self.now = max(self.now, at)
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks or ():
            fn(event)
        if event._ok is False and not event._defused:
            exc = event._value
            if isinstance(event, Process):
                raise ProcessCrashed(event.name, str(exc)) from exc
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the heap), a time (run up to and
        including that instant), or an :class:`Event` (run until it has been
        processed; its value is returned, and a :class:`DeadlockError` is
        raised if the heap drains first).
        """
        if isinstance(until, Event):
            target = until
            if target.processed:
                if target.ok:
                    return target._value
                target._defused = True
                raise target._value
            done = []
            target.add_callback(done.append)
            while not done:
                if not self._heap:
                    raise DeadlockError(
                        f"event {target!r} never triggered; simulation starved "
                        f"at t={self.now:.3f}µs"
                    )
                self.step()
            if target.ok:
                return target._value
            target._defused = True
            raise target._value
        if until is None:
            while self._heap:
                self.step()
            return None
        horizon = float(until)
        if horizon < self.now:
            raise ValueError(f"cannot run until {horizon} < now {self.now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self.now = max(self.now, horizon)
        return None
