"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (AllOf, AnyOf, DeadlockError, ProcessCrashed,
                       SchedulingError)


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    log = []

    def proc():
        yield sim.timeout(5.5)
        log.append(sim.now)
        yield sim.timeout(0.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5.5, 6.0]


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_value_passed_through(sim):
    got = []

    def proc():
        v = yield sim.timeout(1, value="hello")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_event_succeed_wakes_waiter(sim):
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append((v, sim.now))

    def firer():
        yield sim.timeout(3)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert got == [(42, 3.0)]


def test_event_double_trigger_rejected(sim):
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SchedulingError):
        ev.succeed()


def test_event_fail_requires_exception(sim):
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_fail_propagates_into_process(sim):
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield sim.timeout(1)
        ev.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_raises_at_run(sim):
    ev = sim.event()

    def firer():
        yield sim.timeout(1)
        ev.fail(RuntimeError("unhandled"))

    sim.process(firer())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_process_return_value(sim):
    def child():
        yield sim.timeout(2)
        return "result"

    def parent():
        v = yield sim.process(child())
        return v

    p = sim.process(parent())
    sim.run()
    assert p.value == "result"


def test_process_crash_surfaces_with_name(sim):
    def bad():
        yield sim.timeout(1)
        raise ValueError("broken")

    sim.process(bad(), name="badproc")
    with pytest.raises(ProcessCrashed, match="badproc"):
        sim.run()


def test_process_waiting_on_crashed_process_gets_exception(sim):
    def bad():
        yield sim.timeout(1)
        raise ValueError("inner")

    caught = []

    def parent():
        try:
            yield sim.process(bad())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["inner"]


def test_yielding_non_event_is_an_error(sim):
    def bad():
        yield 42

    sim.process(bad(), name="yields-int")
    with pytest.raises(ProcessCrashed):
        sim.run()


def test_non_generator_process_rejected(sim):
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_determinism_same_time_fifo(sim):
    """Events scheduled for the same instant run in scheduling order."""
    order = []

    def proc(tag):
        yield sim.timeout(1)
        order.append(tag)

    for i in range(10):
        sim.process(proc(i))
    sim.run()
    assert order == list(range(10))


def test_run_until_time(sim):
    log = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1)
            log.append(sim.now)

    sim.process(proc())
    sim.run(until=4.5)
    assert log == [1, 2, 3, 4]
    assert sim.now == 4.5
    sim.run()
    assert log[-1] == 10


def test_run_until_past_time_rejected(sim):
    sim.run(until=5)
    with pytest.raises(ValueError):
        sim.run(until=3)


def test_run_until_event_returns_value(sim):
    def proc():
        yield sim.timeout(7)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"
    assert sim.now == 7


def test_run_until_event_deadlock_detected(sim):
    ev = sim.event()
    with pytest.raises(DeadlockError):
        sim.run(until=ev)


def test_run_until_already_processed_event(sim):
    def proc():
        yield sim.timeout(1)
        return 5

    p = sim.process(proc())
    sim.run()
    assert sim.run(until=p) == 5


def test_all_of_collects_values(sim):
    def child(delay, v):
        yield sim.timeout(delay)
        return v

    def parent():
        vals = yield sim.all_of([sim.process(child(3, "a")),
                                 sim.process(child(1, "b"))])
        return (vals, sim.now)

    p = sim.process(parent())
    sim.run()
    assert p.value == (["a", "b"], 3.0)


def test_all_of_empty(sim):
    ev = AllOf(sim, [])
    assert ev.triggered
    sim.run()
    assert ev.value == []


def test_all_of_fails_fast(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("x")

    def slow():
        yield sim.timeout(100)

    caught = []

    def parent():
        try:
            yield sim.all_of([sim.process(bad()), sim.process(slow())])
        except RuntimeError:
            caught.append(sim.now)

    sim.process(parent())
    sim.run()
    assert caught == [1.0]


def test_any_of_first_wins(sim):
    def child(delay, v):
        yield sim.timeout(delay)
        return v

    def parent():
        idx, val = yield sim.any_of([sim.process(child(5, "slow")),
                                     sim.process(child(2, "fast"))])
        return (idx, val, sim.now)

    p = sim.process(parent())
    sim.run()
    assert p.value == (1, "fast", 2.0)


def test_any_of_requires_events(sim):
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_peek(sim):
    assert sim.peek() == float("inf")
    sim.timeout(9)
    assert sim.peek() == 9


def test_callbacks_after_processing_run_immediately(sim):
    ev = sim.timeout(1, value="v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_event_value_before_trigger_raises(sim):
    ev = sim.event()
    with pytest.raises(SchedulingError):
        _ = ev.value
    with pytest.raises(SchedulingError):
        _ = ev.ok
