"""Unit tests for the trace recorder."""

from repro.sim import TraceRecorder


def test_emit_and_len():
    tr = TraceRecorder()
    tr.emit(1.0, "gw", "recv", nbytes=10)
    tr.emit(2.0, "gw", "send", nbytes=10)
    assert len(tr) == 2


def test_disabled_recorder_drops_records():
    tr = TraceRecorder(enabled=False)
    tr.emit(1.0, "gw", "recv")
    assert len(tr) == 0


def test_query_by_category_event_and_attrs():
    tr = TraceRecorder()
    tr.emit(1.0, "gw", "recv", msg=1)
    tr.emit(2.0, "gw", "recv", msg=2)
    tr.emit(3.0, "nic", "recv", msg=1)
    assert len(tr.query(category="gw")) == 2
    assert len(tr.query(event="recv")) == 3
    assert len(tr.query(category="gw", msg=1)) == 1
    assert tr.query(category="gw", msg=1)[0].t == 1.0


def test_record_getitem():
    tr = TraceRecorder()
    tr.emit(1.0, "c", "e", key="v")
    assert tr.records[0]["key"] == "v"


def test_intervals_pairing():
    tr = TraceRecorder()
    tr.emit(1.0, "gw", "start", seq=0)
    tr.emit(3.0, "gw", "end", seq=0)
    tr.emit(2.0, "gw", "start", seq=1)
    tr.emit(5.0, "gw", "end", seq=1)
    tr.emit(6.0, "gw", "start", seq=2)   # never ends
    ivals = tr.intervals("gw", "start", "end", key="seq")
    assert ivals == [(0, 1.0, 3.0), (1, 2.0, 5.0)]


def test_clear():
    tr = TraceRecorder()
    tr.emit(1.0, "a", "b")
    tr.clear()
    assert len(tr) == 0


def test_iteration():
    tr = TraceRecorder()
    tr.emit(1.0, "a", "x")
    tr.emit(2.0, "a", "y")
    assert [r.event for r in tr] == ["x", "y"]
