"""Schedule identity: the optimized kernel dispatches the exact same event
sequence as the frozen pre-optimization snapshot.

Each scenario is built twice — once on :mod:`repro.sim.engine`, once on
:mod:`tests.sim.reference_engine` — with every dispatched event recorded as
``(time, priority, class, name)``.  The sequences must match element for
element: the hot-path pass is only allowed to change *how* the schedule is
executed, never the schedule itself.
"""

import pytest

from repro.sim import engine as optimized
from tests.sim import reference_engine as reference


def run_recorded(mod, scenario):
    """Run ``scenario(mod, sim)`` recording every dispatched event."""
    sim = mod.Simulator()
    log = []
    orig_step = sim.step

    def step():
        if hasattr(sim, "_discard_cancelled"):
            sim._discard_cancelled()
        at, prio, _seq, ev = sim._heap[0]
        log.append((at, prio, type(ev).__name__, ev.name))
        orig_step()

    sim.step = step
    scenario(mod, sim)
    sim.run()
    return log


def assert_identical_schedules(scenario):
    ref = run_recorded(reference, scenario)
    opt = run_recorded(optimized, scenario)
    assert opt == ref
    assert ref, "scenario dispatched nothing — it tests nothing"


# -- scenarios ------------------------------------------------------------------
def scenario_interleaved_timeouts(mod, sim):
    def ticker(period, label, count):
        for _ in range(count):
            yield sim.timeout(period, name=label)

    sim.process(ticker(3.0, "slow", 4), name="slow")
    sim.process(ticker(2.0, "fast", 6), name="fast")
    sim.process(ticker(2.0, "twin", 6), name="twin")   # same instants as fast


def scenario_event_chains(mod, sim):
    ev1, ev2 = sim.event(name="e1"), sim.event(name="e2")

    def firer():
        yield sim.timeout(1.0, name="arm")
        ev1.succeed("one")
        yield sim.timeout(2.0, name="arm2")
        ev2.succeed("two")

    def waiter():
        v = yield ev1
        assert v == "one"
        v = yield ev2
        assert v == "two"
        yield sim.timeout(0.5, name="tail")

    sim.process(firer(), name="firer")
    sim.process(waiter(), name="waiter")


def scenario_combinators(mod, sim):
    def leaf(d, label):
        yield sim.timeout(d, name=label)
        return label

    def root():
        vals = yield sim.all_of([sim.process(leaf(2, "a"), name="a"),
                                 sim.process(leaf(1, "b"), name="b")])
        assert vals == ["a", "b"]
        idx, _v = yield sim.any_of([sim.timeout(5, name="lose"),
                                    sim.timeout(3, name="win")])
        assert idx == 1

    sim.process(root(), name="root")


def scenario_same_instant_priorities(mod, sim):
    ev = sim.event(name="shared")

    def early():
        yield sim.timeout(4.0, name="t-early")

    def waiter(tag):
        yield ev
        yield sim.timeout(1.0, name=f"after-{tag}")

    def firer():
        yield sim.timeout(4.0, name="t-fire")
        ev.succeed()

    sim.process(early(), name="early")
    for tag in ("x", "y", "z"):
        sim.process(waiter(tag), name=f"w{tag}")
    sim.process(firer(), name="firer")


def scenario_failure_propagation(mod, sim):
    def crasher():
        yield sim.timeout(1.0, name="doomed")
        raise RuntimeError("boom")

    def supervisor():
        p = sim.process(crasher(), name="crasher")
        with pytest.raises(RuntimeError):
            yield p
        yield sim.timeout(1.0, name="recovered")

    sim.process(supervisor(), name="supervisor")


@pytest.mark.parametrize("scenario", [
    scenario_interleaved_timeouts,
    scenario_event_chains,
    scenario_combinators,
    scenario_same_instant_priorities,
    scenario_failure_propagation,
], ids=lambda s: s.__name__)
def test_dispatch_schedule_identical(scenario):
    assert_identical_schedules(scenario)


# -- equivalence of the batched constructs --------------------------------------
def test_succeed_later_matches_reference_two_event_pattern():
    """succeed_later(d) must deliver at the exact instant the reference
    kernel's timeout-then-succeed pattern delivers."""
    ref_sim = reference.Simulator()
    ref_ev = ref_sim.event(name="done")
    ref_log = []

    def ref_complete():
        yield ref_sim.timeout(2.25, name="rxov")
        ref_ev.succeed(("meta", 42))

    def ref_wait():
        v = yield ref_ev
        ref_log.append((ref_sim.now, v))

    ref_sim.process(ref_complete(), name="complete")
    ref_sim.process(ref_wait(), name="wait")
    ref_sim.run()

    opt_sim = optimized.Simulator()
    opt_ev = opt_sim.event(name="done")
    opt_log = []

    def opt_wait():
        v = yield opt_ev
        opt_log.append((opt_sim.now, v))

    opt_sim.process(opt_wait(), name="wait")
    opt_ev.succeed_later(2.25, value=("meta", 42))
    opt_sim.run()

    assert opt_log == ref_log == [(2.25, ("meta", 42))]


def test_pooled_timeouts_fire_exactly_like_fresh_ones():
    def scenario(mod, sim):
        pooled = mod is optimized

        def proc():
            for i in range(5):
                yield sim.timeout(1.5, name="w") if not pooled \
                    else sim.timeout(1.5, name="w", pooled=True)

        sim.process(proc(), name="p")

    ref = run_recorded(reference, scenario)
    opt = run_recorded(optimized, scenario)
    assert opt == ref
