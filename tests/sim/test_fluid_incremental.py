"""The incremental fluid-rate engine: equivalence, locality, determinism.

Three properties carry the PR 9 engine:

* **equivalence** — after any add/remove sequence, every live flow's rate
  equals the from-scratch :meth:`FluidNetwork.solve_rates` fixed point
  exactly (``==``, not approx: refilling a component is a pure function of
  its membership);
* **locality** — an arrival/completion re-solves only its own contention
  component, observable through the work counters;
* **determinism** — full-recompute and incremental modes produce
  bit-identical event schedules on randomized workloads, on both the heap
  and the calendar scheduler.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.madeleine import reset_global_ids
from repro.sim import DMA, PIO, FluidNetwork, FluidResource, Simulator
from repro.sim.fluid import Flow
from repro.telemetry import Telemetry


def _remove(net: FluidNetwork, flow: Flow) -> None:
    """Remove a live flow the way ``_on_wake`` does: seed the recompute
    with the remaining members of its former component."""
    seeds = []
    seen = set()
    for res in flow.resources():
        for o in res.flows:
            if o is not flow and o not in seen:
                seen.add(o)
                seeds.append(o)
    net._detach(flow)
    flow.rate = 0.0
    net._recompute(seeds)


# -- equivalence ---------------------------------------------------------------

@st.composite
def _op_sequences(draw):
    """(resources, flow specs, op sequence) — mixed DMA/PIO paths over a
    pool with both shared and disjoint resources."""
    n_res = draw(st.integers(2, 6))
    caps = [draw(st.floats(10.0, 500.0)) for _ in range(n_res)]
    slow = [draw(st.floats(1.0, 4.0)) for _ in range(n_res)]
    n_flows = draw(st.integers(1, 10))
    specs = []
    for i in range(n_flows):
        hops = draw(st.lists(
            st.tuples(st.integers(0, n_res - 1),
                      st.sampled_from((DMA, PIO))),
            min_size=1, max_size=3, unique_by=lambda h: h[0]))
        peak = draw(st.floats(5.0, 400.0))
        specs.append((hops, peak))
    ops = draw(st.lists(st.integers(0, n_flows - 1),
                        min_size=1, max_size=20))
    return caps, slow, specs, ops


@settings(max_examples=60, deadline=None)
@given(_op_sequences())
def test_incremental_matches_solve_rates(seqdata):
    caps, slow, specs, ops = seqdata
    sim = Simulator()
    net = FluidNetwork(sim)
    res = [FluidResource(f"r{i}", c, preempt_slowdown=s)
           for i, (c, s) in enumerate(zip(caps, slow))]
    live: dict[int, Flow] = {}
    for which in ops:
        if which in live:
            _remove(net, live.pop(which))
        else:
            hops, peak = specs[which]
            flow = Flow(f"f{which}", 1e9, [(res[i], kind)
                                           for i, kind in hops], peak)
            flow.done = sim.event()
            live[which] = flow
            net._attach(flow)
            net._recompute([flow])
        oracle = FluidNetwork.solve_rates(net.flows)
        for f in net.flows:
            assert f.rate == oracle[f]   # exact, not approx


@settings(max_examples=60, deadline=None)
@given(_op_sequences())
def test_full_mode_matches_solve_rates(seqdata):
    caps, slow, specs, ops = seqdata
    sim = Simulator()
    net = FluidNetwork(sim, incremental=False)
    res = [FluidResource(f"r{i}", c, preempt_slowdown=s)
           for i, (c, s) in enumerate(zip(caps, slow))]
    live: dict[int, Flow] = {}
    for which in ops:
        if which in live:
            _remove(net, live.pop(which))
        else:
            hops, peak = specs[which]
            flow = Flow(f"f{which}", 1e9, [(res[i], kind)
                                           for i, kind in hops], peak)
            flow.done = sim.event()
            live[which] = flow
            net._attach(flow)
            net._recompute([flow])
        oracle = FluidNetwork.solve_rates(net.flows)
        for f in net.flows:
            assert f.rate == oracle[f]


# -- locality ------------------------------------------------------------------

def test_untouched_component_not_resolved():
    sim = Simulator()
    tel = Telemetry(clock=lambda: sim.now)
    net = FluidNetwork(sim, metrics=tel.metrics)
    r1 = FluidResource("r1", 100.0)
    r2 = FluidResource("r2", 100.0)
    net.transfer("a1", 1e9, [(r1, DMA)], peak=80.0)
    net.transfer("a2", 1e9, [(r1, DMA)], peak=80.0)
    before = net.recomputed_flows          # 1 (a1 alone) + 2 (a1+a2)
    assert before == 3
    # b1 lives on a disjoint resource: its arrival must re-solve only
    # itself, not the {a1, a2} component.
    net.transfer("b1", 1e9, [(r2, DMA)], peak=80.0)
    assert net.recomputed_flows - before == 1
    assert len(net.flows) == 3
    assert net.live_flow_epochs == 1 + 2 + 3
    # telemetry mirrors the plain counters
    assert tel.metrics.total("fluid.recompute_flows") == 4
    assert tel.metrics.total("fluid.recomputes") == 3
    hist = tel.metrics.histogram("fluid.component_size")
    assert hist.count == 3                 # components of size 1, 2, 1
    assert hist.total == 4
    # and the disjoint arrival left the a-component's rates untouched
    rates = {f.name: f.rate for f in net.flows}
    assert rates["a1"] == pytest.approx(50.0)
    assert rates["b1"] == pytest.approx(80.0)


def test_full_mode_resolves_everything():
    sim = Simulator()
    net = FluidNetwork(sim, incremental=False)
    r1 = FluidResource("r1", 100.0)
    r2 = FluidResource("r2", 100.0)
    net.transfer("a1", 1e9, [(r1, DMA)], peak=80.0)
    net.transfer("b1", 1e9, [(r2, DMA)], peak=80.0)
    # second epoch re-solved both components: 1 + 2
    assert net.recomputed_flows == 3
    assert net.live_flow_epochs == 3


def test_pio_cap_tracks_dma_membership():
    # dma_flows bookkeeping: the PIO cap must appear when a DMA flow joins
    # a shared resource and disappear when it leaves.
    sim = Simulator()
    net = FluidNetwork(sim)
    r = FluidResource("r", 1000.0, preempt_slowdown=2.0)
    net.transfer("pio", 1e9, [(r, PIO)], peak=100.0)
    pio = next(iter(net.flows))
    assert pio.rate == pytest.approx(100.0)
    net.transfer("dma", 1e9, [(r, DMA)], peak=100.0)
    assert pio.rate == pytest.approx(50.0)     # peak / preempt_slowdown
    dma = [f for f in net.flows if f.name == "dma"][0]
    _remove(net, dma)
    assert pio.rate == pytest.approx(100.0)    # cap lifted again
    assert r.dma_flows == 0


# -- determinism matrix --------------------------------------------------------

def _drive(scheduler: str, incremental: bool, seed: int):
    """A randomized many-flow workload; returns the completion trace."""
    rng = random.Random(seed)
    sim = Simulator(scheduler=scheduler)
    net = FluidNetwork(sim, incremental=incremental)
    res = [FluidResource(f"r{i}", rng.uniform(50.0, 200.0),
                         preempt_slowdown=rng.uniform(1.0, 3.0))
           for i in range(6)]
    trace: list = []

    def proc(pid: int):
        yield sim.timeout(rng.uniform(0.0, 300.0))
        for step in range(rng.randrange(1, 4)):
            hops = rng.sample(range(len(res)), rng.randrange(1, 4))
            path = [(res[i], rng.choice((DMA, PIO))) for i in hops]
            size = rng.uniform(100.0, 20000.0)
            yield net.transfer(f"f{pid}.{step}", size, path,
                               peak=rng.uniform(10.0, 150.0))
            trace.append((pid, step, sim.now))
            if rng.random() < 0.5:
                yield sim.timeout(rng.uniform(0.0, 50.0))

    for pid in range(rng.randrange(8, 16)):
        sim.process(proc(pid), name=f"p{pid}")
    sim.run()
    return trace, sim.now, sim.events_processed, sim.events_cancelled


@pytest.mark.parametrize("seed", range(4))
def test_full_incremental_heap_calendar_matrix(seed):
    runs = [_drive(scheduler, incremental, seed)
            for scheduler in ("heap", "calendar")
            for incremental in (True, False)]
    for other in runs[1:]:
        assert other == runs[0]    # bit-identical traces and counters


# -- determinism hygiene -------------------------------------------------------

def test_reset_global_ids_restarts_flow_ids():
    f1 = Flow("x", 1.0, [], peak=1.0)
    assert next(itertools.count(f1.id))  # ids were advancing
    reset_global_ids()
    f2 = Flow("y", 1.0, [], peak=1.0)
    assert f2.id == 0
    reset_global_ids()
    f3 = Flow("z", 1.0, [], peak=1.0)
    assert f3.id == 0
