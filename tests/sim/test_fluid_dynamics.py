"""Time-domain property tests of the fluid scheduler: random arrival
schedules must conserve bytes and finish in bounded time."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import DMA, PIO, FluidNetwork, FluidResource, Simulator


@st.composite
def schedules(draw):
    n_res = draw(st.integers(1, 3))
    caps = [draw(st.floats(5.0, 200.0)) for _ in range(n_res)]
    slow = draw(st.floats(1.0, 3.0))
    n_flows = draw(st.integers(1, 10))
    flows = []
    for _ in range(n_flows):
        start = draw(st.floats(0.0, 100.0))
        size = draw(st.floats(1.0, 5e4))
        peak = draw(st.floats(1.0, 150.0))
        hops = draw(st.lists(
            st.tuples(st.integers(0, n_res - 1), st.sampled_from([DMA, PIO])),
            min_size=1, max_size=n_res, unique_by=lambda h: h[0]))
        flows.append((start, size, peak, hops))
    return caps, slow, flows


@given(schedules())
@settings(max_examples=120, deadline=None)
def test_random_schedule_conserves_bytes(data):
    caps, slow, flow_specs = data
    sim = Simulator()
    net = FluidNetwork(sim)
    resources = [FluidResource(f"r{i}", c, preempt_slowdown=slow)
                 for i, c in enumerate(caps)]
    completions = {}
    moved = {}

    def launch(idx, start, size, peak, hops):
        def proc():
            yield sim.timeout(start)
            path = [(resources[i], kind) for i, kind in hops]
            ev = net.transfer(f"f{idx}", size, path, peak=peak)
            flow = yield ev
            completions[idx] = sim.now
            moved[idx] = flow.size - flow.remaining
        return proc

    for idx, (start, size, peak, hops) in enumerate(flow_specs):
        sim.process(launch(idx, start, size, peak, hops)())
    sim.run()
    # every flow completed and moved exactly its bytes
    assert len(completions) == len(flow_specs)
    for idx, (start, size, peak, hops) in enumerate(flow_specs):
        assert moved[idx] == pytest.approx(size, rel=1e-6, abs=1e-6)
        # lower bound: can't beat the standalone peak / tightest capacity
        best_rate = min([peak] + [caps[i] for i, _k in hops])
        assert completions[idx] >= start + size / best_rate - 1e-6
        # upper bound: even time-sliced fairly with every other flow the
        # finish time is bounded (slowdown x (n flows) x serial time)
        n = len(flow_specs)
        worst_rate = best_rate / (slow * n)
        latest_start = max(s for s, *_ in flow_specs)
        assert completions[idx] <= latest_start + size / worst_rate + 1e-6


@given(st.integers(2, 12), st.floats(10.0, 100.0))
@settings(max_examples=40, deadline=None)
def test_staggered_equal_flows_finish_in_arrival_order(n, cap):
    """Equal-size flows arriving one after another through one resource
    must complete in arrival order (max-min fairness never reorders)."""
    sim = Simulator()
    net = FluidNetwork(sim)
    r = FluidResource("r", cap)
    done_order = []

    def launch(idx):
        def proc():
            yield sim.timeout(idx * 10.0)
            yield net.transfer(f"f{idx}", 1000.0, [(r, DMA)], peak=cap)
            done_order.append(idx)
        return proc

    for i in range(n):
        sim.process(launch(i)())
    sim.run()
    assert done_order == sorted(done_order)
