"""The kernel's hot-path machinery: lazy cancellation, pooled timeouts,
batched dispatch, and the event counters they feed."""

import pytest

from repro.sim import SchedulingError, Simulator


# -- empty-heap behaviour -------------------------------------------------------
def test_step_on_empty_heap_raises_scheduling_error(sim):
    # Used to escape as a bare IndexError from heapq.
    with pytest.raises(SchedulingError, match="empty event heap"):
        sim.step()


def test_step_on_drained_heap_raises_scheduling_error(sim):
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SchedulingError, match="empty event heap"):
        sim.step()


def test_step_with_only_cancelled_events_raises(sim):
    sim.timeout(1.0).cancel()
    with pytest.raises(SchedulingError, match="empty event heap"):
        sim.step()
    assert sim.events_cancelled == 1


# -- lazy cancellation ----------------------------------------------------------
def test_cancelled_timeout_never_dispatches(sim):
    fired = []
    t = sim.timeout(5.0)
    t.add_callback(lambda ev: fired.append(sim.now))
    t.cancel()
    sim.run()
    assert fired == []
    assert sim.events_cancelled == 1
    assert sim.events_processed == 0


def test_cancel_is_lazy_the_heap_entry_stays(sim):
    t = sim.timeout(5.0)
    t.cancel()
    assert len(sim._heap) == 1          # discarded only when it reaches the top
    assert sim.peek() == float("inf")   # ...which peek() forces
    assert len(sim._heap) == 0


def test_cancelled_event_does_not_stall_the_clock(sim):
    log = []

    def proc():
        yield sim.timeout(10.0)
        log.append(sim.now)

    dead = sim.timeout(5.0)
    dead.cancel()
    sim.process(proc())
    sim.run()
    assert log == [10.0]


def test_cancel_processed_event_rejected(sim):
    t = sim.timeout(1.0)
    sim.run()
    with pytest.raises(SchedulingError, match="processed"):
        t.cancel()


def test_cancel_untriggered_event_guards_future_trigger(sim):
    ev = sim.event()
    fired = []
    ev.add_callback(lambda e: fired.append(sim.now))
    ev.cancel()
    ev.succeed()
    sim.run()
    assert fired == []
    assert ev.cancelled


def test_counters_distinguish_dispatch_from_discard(sim):
    keep = sim.timeout(1.0)
    drop = sim.timeout(2.0)
    drop.cancel()
    sim.run()
    assert keep.processed
    assert sim.events_processed == 1
    assert sim.events_cancelled == 1


# -- pooled timeouts ------------------------------------------------------------
def test_pooled_timeout_object_is_recycled(sim):
    t1 = sim.timeout(1.0, pooled=True)
    sim.run()
    t2 = sim.timeout(1.0, pooled=True)
    assert t2 is t1


def test_unpooled_timeout_never_recycled(sim):
    t1 = sim.timeout(1.0)
    sim.run()
    t2 = sim.timeout(1.0, pooled=True)
    assert t2 is not t1


def test_recycled_timeout_behaves_like_a_fresh_one(sim):
    log = []

    def proc():
        v = yield sim.timeout(2.0, value="a", pooled=True)
        log.append((sim.now, v))
        v = yield sim.timeout(3.0, value="b", pooled=True)
        log.append((sim.now, v))

    sim.process(proc())
    sim.run()
    assert log == [(2.0, "a"), (5.0, "b")]


def test_cancelled_pooled_timeout_returns_to_pool(sim):
    t = sim.timeout(1.0, pooled=True)
    t.cancel()
    assert sim.peek() == float("inf")
    assert sim.timeout(1.0, pooled=True) is t


def test_pooled_timeout_rejects_negative_rearm(sim):
    sim.timeout(1.0, pooled=True)
    sim.run()
    with pytest.raises(ValueError):
        sim.timeout(-1.0, pooled=True)


# -- batched dispatch (succeed_later) -------------------------------------------
def test_succeed_later_delivers_at_the_delayed_instant(sim):
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    sim.process(waiter())
    ev.succeed_later(7.5, value=123)
    sim.run()
    assert got == [(7.5, 123)]


def test_succeed_later_reads_triggered_immediately(sim):
    # Documented sharp edge: the flag flips at trigger time, not delivery.
    ev = sim.event()
    ev.succeed_later(5.0)
    assert ev.triggered
    assert not ev.processed


def test_succeed_later_rejects_negative_delay(sim):
    with pytest.raises(ValueError):
        sim.event().succeed_later(-0.1)


def test_succeed_later_on_triggered_event_rejected(sim):
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SchedulingError):
        ev.succeed_later(1.0)


def test_succeed_later_costs_one_dispatch(sim):
    # The classic pattern (timeout + succeed) costs two dispatched events;
    # the batched form must cost exactly one, at the same delivery time.
    classic = Simulator()
    evc = classic.event()
    classic.timeout(4.0).add_callback(lambda _e: evc.succeed("v"))
    wake_c = []
    evc.add_callback(lambda e: wake_c.append((classic.now, e.value)))
    classic.run()

    batched = Simulator()
    evb = batched.event()
    evb.succeed_later(4.0, value="v")
    wake_b = []
    evb.add_callback(lambda e: wake_b.append((batched.now, e.value)))
    batched.run()

    assert wake_b == wake_c == [(4.0, "v")]
    assert classic.events_processed == 2
    assert batched.events_processed == 1
