"""Calendar-queue scheduler: bit-identical dispatch vs the binary heap.

The calendar queue is a pure data-structure swap — every workload must
produce the same dispatch order, the same timestamps, and the same
counters as the default heap, at any bucket width (including widths
pathological enough to force re-binning and active-bucket merging).
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import PRIORITY_LATE, PRIORITY_URGENT


def _random_workload(sim: Simulator, seed: int, trace: list) -> None:
    """A messy process mix: timeouts, events, cancels, succeed_later."""
    rng = random.Random(seed)

    def proc(pid: int):
        for step in range(rng.randrange(10, 30)):
            roll = rng.random()
            if roll < 0.45:
                yield sim.timeout(rng.choice((0.0, 0.5, 1.0, 7.3, 40.0,
                                              250.0, 1999.0)))
            elif roll < 0.65:
                ev = sim.event()
                ev.succeed_later(rng.uniform(0.0, 120.0), value=step)
                yield ev
            elif roll < 0.8:
                evs = [sim.timeout(rng.uniform(0.0, 90.0))
                       for _ in range(rng.randrange(1, 4))]
                yield sim.all_of(evs)
            elif roll < 0.9:
                t1 = sim.timeout(rng.uniform(0.0, 60.0))
                t2 = sim.timeout(rng.uniform(0.0, 60.0))
                yield sim.any_of([t1, t2])
                for t in (t1, t2):
                    if not t.processed:
                        t.cancel()
            else:
                ev = sim.event()
                ev.succeed(value=step,
                           priority=rng.choice((PRIORITY_URGENT,
                                                PRIORITY_LATE)))
                yield ev
            trace.append((pid, step, sim.now))

    for pid in range(rng.randrange(20, 40)):
        sim.process(proc(pid), name=f"p{pid}")


def _drive(scheduler: str, seed: int, bucket_width=None):
    sim = Simulator(scheduler=scheduler, bucket_width=bucket_width)
    trace: list = []
    _random_workload(sim, seed, trace)
    sim.run()
    return trace, sim.now, sim.events_processed, sim.events_cancelled


@pytest.mark.parametrize("seed", range(6))
def test_calendar_matches_heap(seed):
    assert _drive("heap", seed) == _drive("calendar", seed)


@pytest.mark.parametrize("width", [0.01, 1.0, 64.0, 1000.0, 1e6])
def test_calendar_matches_heap_at_any_width(width):
    # Tiny widths force constant bucket hopping; huge ones funnel every
    # entry into one overfull bucket and exercise the re-binning path.
    assert _drive("heap", 42) == _drive("calendar", 42, bucket_width=width)


def test_same_time_cluster_does_not_rebin_forever():
    # > _CAL_OVERFULL entries at the exact same instant cannot be split by
    # narrower buckets; rebin must give up and activate the bucket as-is.
    sim = Simulator(scheduler="calendar", bucket_width=1e9)
    hits = []
    for i in range(600):
        sim.timeout(5.0, name=f"t{i}").add_callback(
            lambda ev, i=i: hits.append(i))
    sim.run()
    assert hits == list(range(600))
    assert sim.now == 5.0


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="scheduler"):
        Simulator(scheduler="wheel")


def test_calendar_empty_run():
    sim = Simulator(scheduler="calendar")
    sim.run()
    assert sim.events_processed == 0
