"""Unit and property tests for the fluid-flow rate solver and scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import DMA, PIO, FluidNetwork, FluidResource, Simulator
from repro.sim.fluid import Flow


def make(sim=None):
    sim = sim or Simulator()
    return sim, FluidNetwork(sim)


# -- basic timing --------------------------------------------------------------

def test_single_flow_exact_completion_time():
    sim, net = make()
    r = FluidResource("r", 100.0)
    done = net.transfer("f", 1000.0, [(r, DMA)], peak=50.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(20.0)   # 1000 / min(50, 100)


def test_zero_size_flow_completes_immediately():
    sim, net = make()
    r = FluidResource("r", 100.0)
    done = net.transfer("f", 0, [(r, DMA)], peak=50.0)
    assert done.triggered


def test_two_equal_flows_share_capacity():
    sim, net = make()
    r = FluidResource("r", 100.0)
    times = {}

    def proc(name):
        yield net.transfer(name, 500.0, [(r, DMA)], peak=100.0)
        times[name] = sim.now

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert times["a"] == pytest.approx(10.0)  # 50 each
    assert times["b"] == pytest.approx(10.0)


def test_peak_caps_rate_below_capacity():
    sim, net = make()
    r = FluidResource("r", 100.0)
    done = net.transfer("f", 300.0, [(r, DMA)], peak=30.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_flow_departure_speeds_up_remaining():
    sim, net = make()
    r = FluidResource("r", 100.0)
    times = {}

    def proc(name, size):
        yield net.transfer(name, size, [(r, DMA)], peak=100.0)
        times[name] = sim.now

    sim.process(proc("short", 100.0))   # 50 B/µs until t=2
    sim.process(proc("long", 500.0))    # 100 at t=2, then 100 B/µs
    sim.run()
    assert times["short"] == pytest.approx(2.0)
    assert times["long"] == pytest.approx(6.0)   # 100@2 + 400/100


def test_late_arrival_slows_existing_flow():
    sim, net = make()
    r = FluidResource("r", 100.0)
    times = {}

    def first():
        yield net.transfer("first", 1000.0, [(r, DMA)], peak=100.0)
        times["first"] = sim.now

    def second():
        yield sim.timeout(5)
        yield net.transfer("second", 250.0, [(r, DMA)], peak=100.0)
        times["second"] = sim.now

    sim.process(first())
    sim.process(second())
    sim.run()
    # first: 500B by t=5, then 50 B/µs alongside second (250B -> t=10),
    # then 250B alone at 100 -> t=12.5
    assert times["second"] == pytest.approx(10.0)
    assert times["first"] == pytest.approx(12.5)


def test_multi_hop_flow_limited_by_tightest_resource():
    sim, net = make()
    wide = FluidResource("wide", 1000.0)
    narrow = FluidResource("narrow", 10.0)
    done = net.transfer("f", 100.0, [(wide, DMA), (narrow, DMA)], peak=500.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


# -- PIO-under-DMA preemption (§3.4.1) ----------------------------------------

def test_pio_slowed_while_dma_active():
    sim, net = make()
    pci = FluidResource("pci", 200.0, preempt_slowdown=2.0)
    times = {}

    def dma():
        yield net.transfer("dma", 660.0, [(pci, DMA)], peak=66.0)
        times["dma"] = sim.now

    def pio():
        yield net.transfer("pio", 660.0, [(pci, PIO)], peak=66.0)
        times["pio"] = sim.now

    sim.process(dma())
    sim.process(pio())
    sim.run()
    # DMA unaffected (10µs); PIO at 33 while DMA active (330B), then 66.
    assert times["dma"] == pytest.approx(10.0)
    assert times["pio"] == pytest.approx(15.0)


def test_pio_alone_runs_at_peak():
    sim, net = make()
    pci = FluidResource("pci", 200.0, preempt_slowdown=2.0)
    done = net.transfer("pio", 660.0, [(pci, PIO)], peak=66.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(10.0)


def test_two_pios_share_without_slowdown():
    sim, net = make()
    pci = FluidResource("pci", 66.0, preempt_slowdown=2.0)
    times = {}

    def pio(name):
        yield net.transfer(name, 330.0, [(pci, PIO)], peak=66.0)
        times[name] = sim.now

    sim.process(pio("a"))
    sim.process(pio("b"))
    sim.run()
    assert times["a"] == pytest.approx(10.0)   # 33 each, no preemption


def test_preemption_only_on_shared_resource():
    sim, net = make()
    pci1 = FluidResource("pci1", 200.0, preempt_slowdown=2.0)
    pci2 = FluidResource("pci2", 200.0, preempt_slowdown=2.0)
    times = {}

    def dma():
        yield net.transfer("dma", 660.0, [(pci1, DMA)], peak=66.0)
        times["dma"] = sim.now

    def pio():
        yield net.transfer("pio", 660.0, [(pci2, PIO)], peak=66.0)
        times["pio"] = sim.now

    sim.process(dma())
    sim.process(pio())
    sim.run()
    assert times["pio"] == pytest.approx(10.0)   # different bus: unaffected


# -- validation -----------------------------------------------------------------

def test_resource_validation():
    with pytest.raises(ValueError):
        FluidResource("bad", 0)
    with pytest.raises(ValueError):
        FluidResource("bad", 10, preempt_slowdown=0.5)


def test_flow_validation():
    r = FluidResource("r", 10)
    with pytest.raises(ValueError):
        Flow("f", -1, [(r, DMA)], peak=1.0)
    with pytest.raises(ValueError):
        Flow("f", 1, [(r, DMA)], peak=0.0)
    with pytest.raises(ValueError):
        Flow("f", 1, [(r, "weird")], peak=1.0)


def test_utilization():
    sim, net = make()
    r = FluidResource("r", 100.0)
    net.transfer("a", 1000.0, [(r, DMA)], peak=30.0)
    net.transfer("b", 1000.0, [(r, DMA)], peak=30.0)
    assert net.utilization(r) == pytest.approx(60.0)


def test_rate_observers_called():
    sim, net = make()
    r = FluidResource("r", 100.0)
    events = []
    net.rate_observers.append(lambda t, f, rate: events.append((t, f.name, rate)))
    done = net.transfer("a", 100.0, [(r, DMA)], peak=50.0)
    sim.run(until=done)
    assert events[0] == (0.0, "a", 50.0)


# -- property-based: the solver itself -------------------------------------------

@st.composite
def flow_sets(draw):
    n_res = draw(st.integers(1, 4))
    resources = [
        FluidResource(f"r{i}", draw(st.floats(1.0, 500.0)),
                      preempt_slowdown=draw(st.floats(1.0, 4.0)))
        for i in range(n_res)
    ]
    n_flows = draw(st.integers(1, 8))
    flows = []
    for j in range(n_flows):
        hops = draw(st.lists(
            st.tuples(st.integers(0, n_res - 1), st.sampled_from([DMA, PIO])),
            min_size=1, max_size=n_res, unique_by=lambda h: h[0]))
        path = [(resources[i], kind) for i, kind in hops]
        flow = Flow(f"f{j}", draw(st.floats(1.0, 1e6)), path,
                    peak=draw(st.floats(0.5, 200.0)))
        flows.append(flow)
    for f in flows:
        for res in f.resources():
            res.flows.add(f)
    return resources, flows


@given(flow_sets())
@settings(max_examples=200, deadline=None)
def test_solver_conservation_and_caps(data):
    """Invariants: no resource over capacity, no flow over its peak, every
    rate non-negative, and work conservation (every flow is either at its
    effective cap or crosses a saturated resource)."""
    resources, flows = data
    rates = FluidNetwork.solve_rates(flows)
    eps = 1e-6
    for res in resources:
        total = sum(rates[f] for f in flows if res in f.resources())
        assert total <= res.capacity * (1 + eps)
    for f in flows:
        assert -eps <= rates[f] <= f.peak * (1 + eps)
    # work conservation
    for f in flows:
        cap = f.peak
        for res, kind in f.path:
            if kind == PIO and any(o is not f and o.kind_on(res) == DMA
                                   for o in res.flows):
                cap = min(cap, f.peak / res.preempt_slowdown)
        at_cap = rates[f] >= cap - 1e-5 * max(1.0, cap)
        saturated = any(
            sum(rates[o] for o in flows if res in o.resources())
            >= res.capacity - 1e-5 * max(1.0, res.capacity)
            for res in f.resources())
        assert at_cap or saturated, (f, rates[f], cap)


@given(st.lists(st.floats(1.0, 1e5), min_size=1, max_size=6),
       st.floats(1.0, 300.0))
@settings(max_examples=100, deadline=None)
def test_equal_flows_get_equal_rates(sizes, capacity):
    res = FluidResource("r", capacity)
    flows = [Flow(f"f{i}", s, [(res, DMA)], peak=1e9) for i, s in enumerate(sizes)]
    for f in flows:
        res.flows.add(f)
    rates = FluidNetwork.solve_rates(flows)
    vals = list(rates.values())
    assert max(vals) - min(vals) < 1e-6 * max(1.0, max(vals))
    assert sum(vals) == pytest.approx(capacity)
