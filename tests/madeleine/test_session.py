"""Session API, channel splitting, multiple adapters."""

import pytest

from repro.hw import build_world
from repro.madeleine import Session
from tests.conftest import payload


def test_rank_lookup():
    w = build_world({"x": ["myrinet"], "y": ["myrinet"]})
    s = Session(w)
    assert s.rank("x") == 0 and s.rank("y") == 1
    assert s.ranks(["y", 0]) == [1, 0]
    with pytest.raises(KeyError):
        s.rank("nope")


def test_channel_requires_adapters():
    w = build_world({"x": ["myrinet"], "y": []})
    s = Session(w)
    with pytest.raises(ValueError):
        s.channel("myrinet", ["x", "y"])


def test_channel_needs_two_members():
    w = build_world({"x": ["myrinet"]})
    s = Session(w)
    with pytest.raises(ValueError):
        s.channel("myrinet", ["x"])


def test_channel_duplicate_members_rejected():
    w = build_world({"x": ["myrinet"], "y": ["myrinet"]})
    s = Session(w)
    with pytest.raises(ValueError):
        s.channel("myrinet", ["x", "x"])


def test_unknown_protocol_rejected():
    w = build_world({"x": ["myrinet"], "y": ["myrinet"]})
    s = Session(w)
    with pytest.raises(KeyError):
        s.channel("quantum_link", ["x", "y"])


def test_now_property_tracks_clock():
    w = build_world({"x": []})
    s = Session(w)

    def proc():
        yield s.sim.timeout(123.0)

    s.spawn(proc())
    s.run()
    assert s.now == 123.0


def test_logical_channel_splitting():
    """§2.1.2: several channels over the same protocol and adapter, used to
    logically split communication — messages on one channel never appear on
    the other, and in-order delivery holds per channel."""
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    control = s.channel("myrinet", ["a", "b"], name="control")
    bulk = s.channel("myrinet", ["a", "b"], name="bulk")
    order = []

    def snd():
        # interleave messages on the two channels
        for i, ch in enumerate([bulk, control, bulk]):
            m = ch.endpoint(0).begin_packing(1)
            m.pack(payload(1000 + i, seed=i))
            yield m.end_packing()

    def rcv_control():
        inc = yield control.endpoint(1).begin_unpacking()
        _ev, b = inc.unpack(1001)
        yield inc.end_unpacking()
        order.append(("control", len(b)))

    def rcv_bulk():
        for n in (1000, 1002):
            inc = yield bulk.endpoint(1).begin_unpacking()
            _ev, b = inc.unpack(n)
            yield inc.end_unpacking()
            order.append(("bulk", len(b)))

    s.spawn(snd()); s.spawn(rcv_control()); s.spawn(rcv_bulk()); s.run()
    assert ("control", 1001) in order
    bulk_msgs = [x for x in order if x[0] == "bulk"]
    assert bulk_msgs == [("bulk", 1000), ("bulk", 1002)]


def test_two_adapters_double_throughput():
    """§2.1: Madeleine manages multiple adapters per network; two channels
    on two adapters move two messages in parallel, two channels sharing one
    adapter serialize at the NIC."""
    def run(n_adapters):
        w = build_world({"a": ["myrinet"] * n_adapters,
                         "b": ["myrinet"] * n_adapters})
        s = Session(w)
        ch1 = s.channel("myrinet", ["a", "b"], adapter_index=0)
        ch2 = s.channel("myrinet", ["a", "b"],
                        adapter_index=n_adapters - 1)
        done = {}
        size = 500_000
        data = payload(size)

        def snd(ch):
            def proc():
                m = ch.endpoint(0).begin_packing(1)
                m.pack(data)
                yield m.end_packing()
            return proc

        def rcv(ch, key):
            def proc():
                inc = yield ch.endpoint(1).begin_unpacking()
                _ev, _b = inc.unpack(size)
                yield inc.end_unpacking()
                done[key] = s.now
            return proc

        for ch, key in ((ch1, "c1"), (ch2, "c2")):
            s.spawn(snd(ch)())
            s.spawn(rcv(ch, key)())
        s.run()
        return max(done.values())

    t_shared = run(1)
    t_dual = run(2)
    # two adapters still share one PCI bus, so the gain is bounded by the
    # bus, but must be substantial
    assert t_dual < t_shared * 0.75


def test_adapter_index_out_of_range():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    with pytest.raises(KeyError):
        s.channel("myrinet", ["a", "b"], adapter_index=1)
