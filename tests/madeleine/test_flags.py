"""Unit tests for pack/unpack flag semantics."""

import pytest

from repro.madeleine import (RECV_CHEAPER, RECV_EXPRESS, SEND_CHEAPER,
                             SEND_LATER, SEND_SAFER, RecvMode, SendMode,
                             validate_modes)


def test_enum_values_distinct():
    assert len({SEND_SAFER, SEND_LATER, SEND_CHEAPER}) == 3
    assert len({RECV_EXPRESS, RECV_CHEAPER}) == 2


def test_later_express_contradiction_rejected():
    with pytest.raises(ValueError):
        validate_modes(SEND_LATER, RECV_EXPRESS)


@pytest.mark.parametrize("smode", list(SendMode))
@pytest.mark.parametrize("rmode", list(RecvMode))
def test_all_other_combinations_valid(smode, rmode):
    if smode == SendMode.LATER and rmode == RecvMode.EXPRESS:
        return
    validate_modes(smode, rmode)   # must not raise


def test_validate_coerces_ints():
    validate_modes(2, 1)
    with pytest.raises(ValueError):
        validate_modes(99, 1)
