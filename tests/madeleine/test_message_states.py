"""Message lifecycle state machine: misuse raises clearly."""

import pytest

from repro.hw import build_world
from repro.madeleine import MessageStateError, Session
from tests.conftest import payload


def pair():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b"])
    return w, s, ch


def test_double_end_packing_rejected():
    w, s, ch = pair()

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        m.pack(payload(10))
        m.end_packing()
        with pytest.raises(MessageStateError):
            m.end_packing()
        yield s.sim.timeout(0)

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(10)
        yield inc.end_unpacking()

    s.spawn(snd()); s.spawn(rcv()); s.run()


def test_unpack_after_end_rejected():
    w, s, ch = pair()
    hit = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        m.pack(payload(10))
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(10)
        inc.end_unpacking()
        with pytest.raises(MessageStateError):
            inc.unpack(5)
        hit["ok"] = True
        yield s.sim.timeout(0)

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert hit["ok"]


def test_double_end_unpacking_rejected():
    w, s, ch = pair()
    hit = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        m.pack(payload(10))
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(10)
        yield inc.end_unpacking()
        with pytest.raises(MessageStateError):
            inc.end_unpacking()
        hit["ok"] = True

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert hit["ok"]


def test_gtm_pack_after_end_rejected():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ])
    hit = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        m.pack(payload(100))
        m.end_packing()
        with pytest.raises(MessageStateError):
            m.pack(payload(5))
        hit["ok"] = True
        yield s.sim.timeout(0)

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, _b = inc.unpack(100)
        yield inc.end_unpacking()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert hit["ok"]


def test_executor_propagates_failure_to_end_event():
    """A failing op (bad flags) surfaces on the returned event, not as a
    stray crash."""
    w, s, ch = pair()
    hit = {}

    def snd():
        from repro.madeleine import SEND_LATER, RECV_EXPRESS
        m = ch.endpoint(0).begin_packing(1)
        ev = m.pack(payload(10), SEND_LATER, RECV_EXPRESS)   # forbidden combo
        try:
            yield ev
        except ValueError as exc:
            hit["msg"] = str(exc)

    s.spawn(snd())
    s.run()
    assert "LATER" in hit["msg"]
