"""Property-based round-trip tests for the wire codec (§2.3 records).

Every encodable record decodes back to itself — including the announce
mode-byte flag bits (batched 0x80, striped 0x40, eager 0x20) and the
eager record's entry table — and malformed buffers raise
:class:`ValueError` instead of decoding to garbage.
"""

from hypothesis import given, settings, strategies as st

from repro.madeleine.flags import RecvMode, SendMode
from repro.madeleine.wire import (ANNOUNCE_BYTES, DESC_BYTES,
                                  EAGER_ENTRY_BYTES, EAGER_HDR_BYTES,
                                  EAGER_VERSION, MODE_GTM,
                                  MODE_REGULAR, STRIPE_BYTES, STRIPE_VERSION,
                                  Announce, Descriptor, EagerEntry,
                                  EagerRecord, StripeRecord,
                                  decode_announce, decode_descriptor,
                                  decode_eager, decode_stripe,
                                  eager_record_bytes, encode_announce,
                                  encode_descriptor, encode_eager,
                                  encode_eager_table, encode_stripe)

_SETTINGS = dict(max_examples=200, deadline=None)


@st.composite
def announces(draw):
    # An eager announce excludes batching and striping (the record replaces
    # the whole descriptor stream), so the flags are drawn dependently.
    eager = draw(st.booleans())
    return Announce(
        mode=draw(st.sampled_from([MODE_REGULAR, MODE_GTM])),
        origin=draw(st.integers(0, 0xFFFF)),
        final_dst=draw(st.integers(0, 0xFFFF)),
        mtu=draw(st.integers(1, 0xFFFF).map(lambda kb: kb * 1024)),
        msg_id=draw(st.integers(0, 0xFFFF_FFFF)),
        hops_left=draw(st.integers(0, 0xFF)),
        batched=False if eager else draw(st.booleans()),
        striped=False if eager else draw(st.booleans()),
        eager=eager,
    )


def descriptors():
    data = st.builds(
        Descriptor,
        length=st.integers(0, 0xFFFF_FFFF),
        smode=st.sampled_from(list(SendMode)),
        rmode=st.sampled_from(list(RecvMode)),
    )
    terminators = st.builds(
        Descriptor,
        length=st.just(0),
        smode=st.sampled_from(list(SendMode)),
        rmode=st.sampled_from(list(RecvMode)),
        terminator=st.just(True),
    )
    return st.one_of(data, terminators)


def stripes():
    return st.integers(1, 0xFFFF).flatmap(
        lambda total: st.builds(
            StripeRecord,
            stripe_id=st.integers(0, 0xFFFF_FFFF),
            seq=st.integers(0, total - 1),
            total=st.just(total),
        ))


@given(a=announces())
@settings(**_SETTINGS)
def test_announce_roundtrip(a):
    raw = encode_announce(a)
    assert len(raw) == ANNOUNCE_BYTES
    assert decode_announce(raw) == a


@given(d=descriptors())
@settings(**_SETTINGS)
def test_descriptor_roundtrip(d):
    raw = encode_descriptor(d)
    assert len(raw) == DESC_BYTES
    assert decode_descriptor(raw) == d


@given(s=stripes())
@settings(**_SETTINGS)
def test_stripe_roundtrip(s):
    raw = encode_stripe(s)
    assert len(raw) == STRIPE_BYTES
    got = decode_stripe(raw)
    assert got == s
    assert got.version == STRIPE_VERSION


@given(a=announces())
@settings(**_SETTINGS)
def test_announce_flag_bits_on_the_wire(a):
    """The batched/striped/eager flags ride the mode byte (0x80 / 0x40 /
    0x20) and never leak into the decoded base mode."""
    raw = encode_announce(a)
    mode_byte = raw[0]
    assert bool(mode_byte & 0x80) == a.batched
    assert bool(mode_byte & 0x40) == a.striped
    assert bool(mode_byte & 0x20) == a.eager
    assert mode_byte & ~0xE0 == a.mode


def eager_entries():
    return st.builds(
        EagerEntry,
        data=st.binary(min_size=0, max_size=200),
        smode=st.sampled_from(list(SendMode)),
        rmode=st.sampled_from(list(RecvMode)),
    )


def eager_records():
    return st.builds(
        EagerRecord,
        entries=st.lists(eager_entries(), min_size=0, max_size=8).map(tuple),
    )


@given(rec=eager_records())
@settings(**_SETTINGS)
def test_eager_roundtrip(rec):
    raw = encode_eager(rec)
    assert len(raw) == eager_record_bytes(len(e.data) for e in rec.entries)
    got = decode_eager(raw)
    assert got == rec
    assert got.version == EAGER_VERSION
    assert got.total_payload == rec.total_payload


@given(rec=eager_records())
@settings(**_SETTINGS)
def test_eager_table_plus_payloads_is_the_full_record(rec):
    """The sender-side split (control table emitted first, payloads
    appended) concatenates to exactly what ``encode_eager`` produces."""
    table = encode_eager_table((len(e.data), e.smode, e.rmode)
                               for e in rec.entries)
    assert len(table) == EAGER_HDR_BYTES + EAGER_ENTRY_BYTES * len(rec.entries)
    payloads = b"".join(e.data for e in rec.entries)
    assert table + payloads == encode_eager(rec)


@given(rec=eager_records(), cut=st.integers(1, 16))
@settings(**_SETTINGS)
def test_eager_truncation_raises(rec, cut):
    raw = encode_eager(rec)
    try:
        decode_eager(raw[:max(0, len(raw) - cut)])
    except ValueError:
        return
    raise AssertionError("decode_eager accepted a truncated record")


@given(rec=eager_records())
@settings(**_SETTINGS)
def test_eager_unknown_version_raises(rec):
    raw = bytearray(encode_eager(rec))
    raw[0] = EAGER_VERSION + 1
    import pytest
    with pytest.raises(ValueError, match="version"):
        decode_eager(bytes(raw))


@given(raw=st.binary(min_size=0, max_size=64))
@settings(**_SETTINGS)
def test_wrong_length_raises(raw):
    for nbytes, decode in ((ANNOUNCE_BYTES, decode_announce),
                           (DESC_BYTES, decode_descriptor),
                           (STRIPE_BYTES, decode_stripe)):
        if len(raw) != nbytes:
            try:
                decode(raw)
            except ValueError:
                continue
            raise AssertionError(
                f"{decode.__name__} accepted a {len(raw)}-byte buffer")


@given(raw=st.binary(min_size=STRIPE_BYTES, max_size=STRIPE_BYTES))
@settings(**_SETTINGS)
def test_stripe_decode_rejects_garbage(raw):
    """Exact-length garbage either decodes to a valid record or raises a
    clean ValueError — never an invalid StripeRecord or another exception."""
    try:
        got = decode_stripe(raw)
    except ValueError:
        return
    assert got.version == STRIPE_VERSION
    assert got.total >= 1 and 0 <= got.seq < got.total


def test_out_of_range_fields_refuse_to_encode():
    import pytest

    with pytest.raises(ValueError):
        encode_announce(Announce(mode=MODE_GTM, origin=0x1_0000, final_dst=0,
                                 mtu=1024, msg_id=0))
    with pytest.raises(ValueError):
        encode_announce(Announce(mode=MODE_GTM, origin=0, final_dst=0,
                                 mtu=64 << 20, msg_id=0))
    with pytest.raises(ValueError):
        encode_descriptor(Descriptor(length=1 << 32))
    with pytest.raises(ValueError):
        encode_stripe(StripeRecord(stripe_id=1 << 32, seq=0, total=1))
    with pytest.raises(ValueError):
        Descriptor(length=1, terminator=True)
    with pytest.raises(ValueError):
        StripeRecord(stripe_id=0, seq=2, total=2)
    with pytest.raises(ValueError):
        StripeRecord(stripe_id=0, seq=0, total=0)
    # eager: flag exclusivity and wire-field ceilings
    with pytest.raises(ValueError):
        Announce(mode=MODE_GTM, origin=0, final_dst=0, mtu=1024, msg_id=0,
                 eager=True, batched=True)
    with pytest.raises(ValueError):
        Announce(mode=MODE_GTM, origin=0, final_dst=0, mtu=1024, msg_id=0,
                 eager=True, striped=True)
    with pytest.raises(ValueError):
        encode_eager_table([(1 << 32, SendMode.CHEAPER, RecvMode.CHEAPER)])
    with pytest.raises(ValueError):
        encode_eager_table([], version=256)
