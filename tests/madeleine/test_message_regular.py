"""Regular (single-network) message path: semantics, ordering, flags."""

import numpy as np
import pytest

from repro.hw import build_world
from repro.madeleine import (RECV_CHEAPER, RECV_EXPRESS, SEND_CHEAPER,
                             SEND_LATER, SEND_SAFER, MessageStateError,
                             Session, UnpackMismatch)
from repro.memory import Buffer
from tests.conftest import payload


def make_pair(proto):
    w = build_world({"a": [proto], "b": [proto]})
    s = Session(w)
    ch = s.channel(proto, ["a", "b"])
    return w, s, ch


@pytest.mark.parametrize("proto", ["myrinet", "sci", "sbp", "fast_ethernet"])
def test_single_buffer_roundtrip(proto):
    w, s, ch = make_pair(proto)
    data = payload(40000)
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, buf = inc.unpack(40000)
        yield inc.end_unpacking()
        got["data"] = buf.tobytes()
        got["origin"] = inc.origin

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["data"] == data.tobytes()
    assert got["origin"] == 0


@pytest.mark.parametrize("proto", ["myrinet", "sci"])
def test_multi_buffer_message_order_preserved(proto):
    w, s, ch = make_pair(proto)
    parts = [payload(n, seed=n) for n in (17, 4096, 1, 100000, 333)]
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        for p in parts:
            yield m.pack(p)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        bufs = []
        for p in parts:
            _ev, b = inc.unpack(len(p))
            bufs.append(b)
        yield inc.end_unpacking()
        got["parts"] = [b.tobytes() for b in bufs]

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["parts"] == [p.tobytes() for p in parts]


def test_safer_allows_immediate_buffer_reuse():
    """SEND_SAFER: the library copies at pack time, so mutating the user
    buffer right after pack must not corrupt the message."""
    w, s, ch = make_pair("myrinet")
    data = payload(5000)
    original = data.tobytes()
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        ev = m.pack(data, SEND_SAFER, RECV_CHEAPER)
        yield ev
        data[:] = 0          # clobber after pack returns
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, b = inc.unpack(5000, SEND_SAFER, RECV_CHEAPER)
        yield inc.end_unpacking()
        got["data"] = b.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["data"] == original


def test_cheaper_zero_copy_on_dynamic_network():
    """SEND_CHEAPER on Myrinet references user memory directly: no copies."""
    w, s, ch = make_pair("myrinet")
    data = payload(100000)
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(data, SEND_CHEAPER, RECV_CHEAPER)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, b = inc.unpack(100000)
        yield inc.end_unpacking()
        got["ok"] = b.tobytes() == data.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["ok"]
    assert w.accounting.copies == 0


def test_later_data_arrives_by_end_unpacking():
    """SEND_LATER data may be modified until end_packing; the bytes on the
    wire must be the buffer's content at end_packing time."""
    w, s, ch = make_pair("myrinet")
    data = payload(3000)
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        ev = m.pack(data, SEND_LATER, RECV_CHEAPER)
        yield ev
        data[:] = 42         # allowed: LATER reads at end_packing
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, b = inc.unpack(3000, SEND_LATER, RECV_CHEAPER)
        yield inc.end_unpacking()
        got["data"] = b.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["data"] == b"\x2a" * 3000


def test_express_available_at_unpack_return():
    """RECV_EXPRESS data must be readable right after yielding the unpack
    event — the classic 'size header first' idiom."""
    w, s, ch = make_pair("myrinet")
    body = payload(12345)
    header = np.array([len(body)], dtype=np.uint32).view(np.uint8)
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(header, SEND_CHEAPER, RECV_EXPRESS)
        yield m.pack(body, SEND_CHEAPER, RECV_CHEAPER)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        ev, h = inc.unpack(4, SEND_CHEAPER, RECV_EXPRESS)
        yield ev
        size = int(h.data.view(np.uint32)[0])     # readable NOW
        _ev2, b = inc.unpack(size, SEND_CHEAPER, RECV_CHEAPER)
        yield inc.end_unpacking()
        got["size"] = size
        got["body"] = b.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["size"] == 12345
    assert got["body"] == body.tobytes()


def test_unpack_into_user_buffer():
    w, s, ch = make_pair("myrinet")
    data = payload(2000)
    target = Buffer.alloc(2000)
    done = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, b = inc.unpack(into=target)
        yield inc.end_unpacking()
        done["same"] = b is target

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert done["same"]
    assert target.tobytes() == data.tobytes()


def test_unpack_size_mismatch_detected_dynamic():
    w, s, ch = make_pair("myrinet")
    errors = []

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(payload(1000))
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(500)      # wrong size: protocol violation
        try:
            yield inc.end_unpacking()
        except Exception as exc:
            errors.append(type(exc).__name__)

    s.spawn(snd(), "snd")
    s.spawn(rcv(), "rcv")
    crashed = None
    try:
        s.run()
    except Exception as exc:   # the sender side may surface it first
        crashed = exc
    assert errors or crashed is not None
    if errors:
        assert errors[0] in ("UnpackMismatch", "TransferError")


def test_unpack_size_mismatch_detected_static():
    w, s, ch = make_pair("sci")
    errors = []

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(payload(1000))
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(400)     # short: leftover chunk bytes at end
        try:
            yield inc.end_unpacking()
        except UnpackMismatch:
            errors.append("mismatch")

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert errors == ["mismatch"]


def test_pack_after_end_rejected():
    w, s, ch = make_pair("myrinet")

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(payload(10))
        m.end_packing()
        with pytest.raises(MessageStateError):
            m.pack(payload(10))
        yield s.sim.timeout(0)

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(10)
        yield inc.end_unpacking()

    s.spawn(snd()); s.spawn(rcv()); s.run()


def test_pack_to_self_rejected():
    w, s, ch = make_pair("myrinet")
    with pytest.raises(ValueError):
        ch.endpoint(0).begin_packing(0)


def test_pack_to_non_member_rejected():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"], "c": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b"])
    with pytest.raises(ValueError):
        ch.endpoint(0).begin_packing(2)


def test_two_messages_back_to_back():
    w, s, ch = make_pair("sci")
    d1, d2 = payload(5000, 1), payload(7000, 2)
    got = []

    def snd():
        for d in (d1, d2):
            m = ch.endpoint(0).begin_packing(1)
            yield m.pack(d)
            yield m.end_packing()

    def rcv():
        for d in (d1, d2):
            inc = yield ch.endpoint(1).begin_unpacking()
            _ev, b = inc.unpack(len(d))
            yield inc.end_unpacking()
            got.append(b.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got == [d1.tobytes(), d2.tobytes()]


def test_bidirectional_messages_cross():
    w, s, ch = make_pair("myrinet")
    d0, d1 = payload(3000, 3), payload(4000, 4)
    got = {}

    def peer(rank, mine, theirs):
        def proc():
            # end_packing is synchronous ("guarantees the whole message has
            # been transmitted", §2.1.2), so a head-to-head exchange must
            # post its receives before blocking on it.
            m = ch.endpoint(rank).begin_packing(1 - rank)
            m.pack(mine)
            sent = m.end_packing()
            inc = yield ch.endpoint(rank).begin_unpacking()
            _ev, b = inc.unpack(len(theirs))
            yield inc.end_unpacking()
            yield sent
            got[rank] = b.tobytes()
        return proc

    s.spawn(peer(0, d0, d1)())
    s.spawn(peer(1, d1, d0)())
    s.run()
    assert got[0] == d1.tobytes()
    assert got[1] == d0.tobytes()


def test_empty_message():
    w, s, ch = make_pair("myrinet")
    done = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        yield inc.end_unpacking()
        done["t"] = s.now

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert "t" in done


def test_sci_chunk_aggregation_copies_accounted():
    """The static BMM copies on both sides; the copy accounting must show
    exactly len(data) bytes in and out."""
    w, s, ch = make_pair("sci")
    data = payload(50000)

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, _b = inc.unpack(50000)
        yield inc.end_unpacking()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    by = w.accounting.by_label()
    assert by["bmm.chunk_in"][1] == 50000
    assert by["bmm.chunk_out"][1] == 50000


def test_small_buffers_share_sci_chunk():
    """Aggregation: many small packs should produce far fewer wire fragments
    than packs (they share 32 KB chunks)."""
    w, s, ch = make_pair("sci")
    parts = [payload(100, seed=i) for i in range(50)]

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        for p in parts:
            yield m.pack(p)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        for p in parts:
            inc.unpack(len(p))
        yield inc.end_unpacking()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    frags = w.trace.query(category="xfer", event="fragment", kind="chunk")
    assert len(frags) == 1      # 5000 bytes << one 32 KB chunk
