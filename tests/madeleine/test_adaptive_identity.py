"""Schedule-identity: adaptive plumbing is invisible until it fires.

docs/adaptive.md promises that the adaptive transport is pure synchronous
bookkeeping — a :class:`TransportPolicy` whose knobs are all neutralized
(eager off, balancing off; re-striping has nothing to act on without
faults) leaves the discrete-event schedule *bit-identical* to an
unconfigured run.  These tests pin that promise two ways: the committed
golden figure 5 trace must reproduce under the neutral policy, and a
randomized message matrix over a dual-gateway multirail bridge must give
the same full trace and completion time with and without the policy.
"""

import json
import pathlib
import random

import numpy as np
import pytest

from repro.hw import build_world
from repro.madeleine import Session, TransportPolicy, reset_global_ids

GOLDEN = (pathlib.Path(__file__).parent.parent / "data"
          / "golden_fig5_trace.json")

#: every adaptation disabled — the policy object is attached but inert.
NEUTRAL = TransportPolicy(eager_threshold=0, gateway_balance=False)


def _rows(world):
    """The full trace, hashable row per record (exact timestamps)."""
    return [(r.t, r.category, r.event, tuple(sorted(r.attrs.items())))
            for r in world.trace]


def _run_fig5(policy):
    """The golden-trace scenario (2 MB b0 -> a0, 64 KB paquets) with an
    explicit transport policy."""
    reset_global_ids()
    world = build_world({
        "a0": ["myrinet", "fast_ethernet"],
        "gw": ["myrinet", "sci", "fast_ethernet"],
        "b0": ["sci", "fast_ethernet"],
    })
    session = Session(world)
    ch_a = session.channel("myrinet", ["a0", "gw"])
    ch_b = session.channel("sci", ["gw", "b0"])
    vch = session.virtual_channel([ch_a, ch_b], packet_size=64 << 10,
                                  transport_policy=policy)
    message = 2 << 20
    data = np.zeros(message, dtype=np.uint8)
    done = {}

    def snd():
        m = vch.endpoint(session.rank("b0")).begin_packing(session.rank("a0"))
        yield m.pack(data)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(session.rank("a0")).begin_unpacking()
        _ev, _b = inc.unpack(message)
        yield inc.end_unpacking()
        done["t"] = session.now

    session.spawn(snd())
    session.spawn(rcv())
    session.run()
    return world, done["t"]


def test_neutral_policy_reproduces_the_golden_fig5_trace():
    """The strongest identity statement: with the policy attached but
    neutralized, the committed pre-adaptive golden trace reproduces bit
    for bit — timestamps included."""
    world, elapsed = _run_fig5(NEUTRAL)
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    current = [[r.t, r.category, r.event,
                r.attrs.get("seq"), r.attrs.get("nbytes")]
               for r in world.trace if r.category in ("gateway", "xfer")]
    assert len(current) == len(golden)
    for got, want in zip(current, golden):
        assert got == want
    assert elapsed == 39503.54562454843


def test_fig5_full_trace_identical_with_and_without_policy():
    world_off, t_off = _run_fig5(None)
    world_neutral, t_neutral = _run_fig5(NEUTRAL)
    assert _rows(world_off) == _rows(world_neutral)
    assert t_off == t_neutral


def _run_matrix(policy, seed):
    """A randomized message matrix over the dual-gateway multirail bridge
    (the topology where gateway balancing would hook in if enabled)."""
    reset_global_ids()
    world = build_world({
        "a0": ["myrinet"], "a1": ["myrinet"],
        "gw0": ["myrinet", "sci"], "gw1": ["myrinet", "sci"],
        "b0": ["sci"], "b1": ["sci"],
    })
    session = Session(world, packet_size=16 << 10)
    ch_a = session.channel("myrinet", ["a0", "a1", "gw0", "gw1"])
    ch_b = session.channel("sci", ["gw0", "gw1", "b0", "b1"])
    vch = session.virtual_channel([ch_a, ch_b], multirail=True,
                                  transport_policy=policy)
    rng = random.Random(seed)
    pairs = [("a0", "b0"), ("a1", "b1"), ("b0", "a1"), ("b1", "a0")]
    flows = [(src, dst,
              [int(2 ** rng.uniform(0, 16)) for _ in range(rng.randint(1, 4))])
             for src, dst in pairs]

    def sender(src, dst, sizes):
        ep = vch.endpoint(session.rank(src))
        for n in sizes:
            msg = ep.begin_packing(session.rank(dst))
            yield msg.pack(np.zeros(n, dtype=np.uint8))
            yield msg.end_packing()

    def receiver(dst, sizes):
        ep = vch.endpoint(session.rank(dst))
        for n in sizes:
            inc = yield ep.begin_unpacking()
            _ev, _b = inc.unpack(n)
            yield inc.end_unpacking()

    for src, dst, sizes in flows:
        session.spawn(sender(src, dst, sizes), name=f"snd:{src}")
        session.spawn(receiver(dst, sizes), name=f"rcv:{dst}")
    session.run()
    return world, session.now


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_random_matrix_schedule_identical_with_neutral_policy(seed):
    world_off, t_off = _run_matrix(None, seed)
    world_neutral, t_neutral = _run_matrix(NEUTRAL, seed)
    assert _rows(world_off) == _rows(world_neutral)
    assert t_off == t_neutral


@pytest.mark.parametrize("seed", [0, 7])
def test_random_matrix_delivers_with_policy_enabled(seed):
    """The live policy (eager + balancing on) must still deliver the same
    matrix — the schedule may differ, completion may not hang."""
    _world, t = _run_matrix(TransportPolicy(), seed)
    assert t > 0.0
