"""Scatter/gather aggregation BMM (§2.1.1)."""


from repro.hw import build_world, register_protocol, scaled, MYRINET, PROTOCOLS
from repro.madeleine import (RECV_CHEAPER, RECV_EXPRESS, SEND_CHEAPER,
                             SEND_LATER, SEND_SAFER, Session)
from tests.conftest import payload

if "myrinet_nogather" not in PROTOCOLS:
    register_protocol(scaled(MYRINET, name="myrinet_nogather", gather=False))
if "myrinet_tiny_mtu" not in PROTOCOLS:
    register_protocol(scaled(MYRINET, name="myrinet_tiny_mtu", max_mtu=1 << 10))


def make_pair(proto="myrinet"):
    w = build_world({"a": [proto], "b": [proto]})
    s = Session(w)
    ch = s.channel(proto, ["a", "b"])
    return w, s, ch


def roundtrip(w, s, ch, parts, modes=None):
    modes = modes or [(SEND_CHEAPER, RECV_CHEAPER)] * len(parts)
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        for p, (sm, rm) in zip(parts, modes):
            yield m.pack(p, sm, rm)
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        bufs = []
        for p, (sm, rm) in zip(parts, modes):
            _ev, b = inc.unpack(len(p), sm, rm)
            bufs.append(b)
        yield inc.end_unpacking()
        got["parts"] = [b.tobytes() for b in bufs]

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["parts"] == [p.tobytes() for p in parts]
    return got


def body_fragments(w):
    return [r for r in w.trace.query(category="xfer", event="fragment")
            if r["kind"] == "frag"]


def test_small_buffers_coalesce_into_one_fragment():
    w, s, ch = make_pair()
    parts = [payload(100, seed=i) for i in range(20)]
    roundtrip(w, s, ch, parts)
    frags = body_fragments(w)
    assert len(frags) == 1
    assert frags[0]["nbytes"] == 2000


def test_gather_is_zero_copy():
    w, s, ch = make_pair()
    parts = [payload(500, seed=i) for i in range(10)]
    roundtrip(w, s, ch, parts)
    assert w.accounting.copies == 0


def test_express_closes_group():
    w, s, ch = make_pair()
    parts = [payload(100, 1), payload(100, 2), payload(100, 3)]
    modes = [(SEND_CHEAPER, RECV_CHEAPER),
             (SEND_CHEAPER, RECV_EXPRESS),     # boundary after this one
             (SEND_CHEAPER, RECV_CHEAPER)]
    roundtrip(w, s, ch, parts, modes)
    frags = body_fragments(w)
    assert [f["nbytes"] for f in frags] == [200, 100]


def test_group_splits_at_mtu():
    w, s, ch = make_pair("myrinet_tiny_mtu")
    parts = [payload(400, seed=i) for i in range(5)]   # 2000B over 1KB MTU
    roundtrip(w, s, ch, parts)
    frags = body_fragments(w)
    assert [f["nbytes"] for f in frags] == [800, 800, 400]


def test_large_buffer_bypasses_group():
    w, s, ch = make_pair()
    big = payload(MYRINET.max_mtu + 10, seed=7)
    parts = [payload(100, 1), big, payload(100, 2)]
    roundtrip(w, s, ch, parts)
    frags = body_fragments(w)
    sizes = [f["nbytes"] for f in frags]
    # group [100] flushed by the big buffer, big split into mtu + 10,
    # trailing 100 grouped alone at the end
    assert sizes == [100, MYRINET.max_mtu, 10, 100]


def test_safer_member_still_shadowed():
    w, s, ch = make_pair()
    data = payload(300)
    original = data.tobytes()
    got = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        ev = m.pack(data, SEND_SAFER, RECV_CHEAPER)
        yield ev
        data[:] = 0
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _ev, b = inc.unpack(300, SEND_SAFER, RECV_CHEAPER)
        yield inc.end_unpacking()
        got["b"] = b.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["b"] == original
    assert w.accounting.by_label()["bmm.safer"] == (1, 300)


def test_later_members_grouped_at_end():
    w, s, ch = make_pair()
    parts = [payload(100, 1), payload(100, 2), payload(100, 3)]
    modes = [(SEND_CHEAPER, RECV_CHEAPER),
             (SEND_LATER, RECV_CHEAPER),
             (SEND_CHEAPER, RECV_CHEAPER)]
    roundtrip(w, s, ch, parts, modes)
    frags = body_fragments(w)
    # the LATER member is emitted at end_packing, where the group of the
    # two eager members is still open: all three share one fragment (both
    # sides replay the same decision, so the mirror stays consistent)
    assert [f["nbytes"] for f in frags] == [300]


def test_gather_faster_than_eager_for_many_small_buffers():
    parts = [payload(256, seed=i) for i in range(32)]

    def run(proto):
        w, s, ch = make_pair(proto)
        t = {}

        def snd():
            m = ch.endpoint(0).begin_packing(1)
            for p in parts:
                yield m.pack(p)
            yield m.end_packing()

        def rcv():
            inc = yield ch.endpoint(1).begin_unpacking()
            for p in parts:
                inc.unpack(len(p))
            yield inc.end_unpacking()
            t["t"] = s.now

        s.spawn(snd()); s.spawn(rcv()); s.run()
        return t["t"]

    t_gather = run("myrinet")
    t_eager = run("myrinet_nogather")
    assert t_gather < t_eager / 4     # 1 fragment instead of 32


def test_mixed_express_sizes_roundtrip():
    w, s, ch = make_pair()
    parts = [payload(n, seed=n) for n in (1, 999, 4096, 3, 70000)]
    modes = [(SEND_CHEAPER, RECV_EXPRESS)] * len(parts)
    roundtrip(w, s, ch, parts, modes)


from hypothesis import given, settings, strategies as st
from repro.madeleine import RecvMode, SendMode


@given(
    sizes=st.lists(st.integers(1, 3000), min_size=1, max_size=20),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_gather_mirror_property(sizes, data):
    """Random pack sequences with random flags on a tiny-MTU gather
    protocol: the receiver's replay of the grouping decisions must always
    line up with the sender's (stressing group boundaries hard)."""
    modes = []
    for _ in sizes:
        sm = data.draw(st.sampled_from(list(SendMode)))
        rm = data.draw(st.sampled_from(
            [RecvMode.CHEAPER] if sm == SendMode.LATER else list(RecvMode)))
        modes.append((sm, rm))
    w, s, ch = make_pair("myrinet_tiny_mtu")
    parts = [payload(n, seed=n) for n in sizes]
    roundtrip(w, s, ch, parts, modes)
