"""One in-flight message per connection: concurrent messages on the same
connection queue up behind the connection lock (as a second Madeleine
thread would block), and never interleave on the wire."""


from repro.hw import build_world
from repro.madeleine import Session
from tests.conftest import payload


def test_concurrent_messages_same_connection_serialize():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b"])
    got = []

    def snd():
        # start both before either finishes: the second must wait for the
        # first's connection lock, not interleave
        m1 = ch.endpoint(0).begin_packing(1)
        m1.pack(payload(5000, 1))
        e1 = m1.end_packing()
        m2 = ch.endpoint(0).begin_packing(1)
        m2.pack(payload(5000, 2))
        e2 = m2.end_packing()
        yield e1
        yield e2

    def rcv():
        for seed in (1, 2):
            inc = yield ch.endpoint(1).begin_unpacking()
            _ev, b = inc.unpack(5000)
            yield inc.end_unpacking()
            got.append(b.tobytes() == payload(5000, seed).tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got == [True, True]


def test_connection_reusable_after_completion():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b"])
    got = []

    def snd():
        for i in range(2):
            m = ch.endpoint(0).begin_packing(1)
            m.pack(payload(100, seed=i))
            yield m.end_packing()

    def rcv():
        for i in range(2):
            inc = yield ch.endpoint(1).begin_unpacking()
            _ev, b = inc.unpack(100)
            yield inc.end_unpacking()
            got.append(b.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got == [payload(100, seed=0).tobytes(),
                   payload(100, seed=1).tobytes()]


def test_different_destinations_concurrent_ok():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"], "c": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b", "c"])
    m1 = ch.endpoint(0).begin_packing(1)
    m2 = ch.endpoint(0).begin_packing(2)   # other connection: fine
    got = {}

    def snd():
        m1.pack(payload(10, 1))
        m2.pack(payload(10, 2))
        e1, e2 = m1.end_packing(), m2.end_packing()
        yield e1
        yield e2

    def rcv(rank, seed):
        def proc():
            inc = yield ch.endpoint(rank).begin_unpacking()
            _ev, b = inc.unpack(10)
            yield inc.end_unpacking()
            got[rank] = b.tobytes() == payload(10, seed).tobytes()
        return proc

    s.spawn(snd()); s.spawn(rcv(1, 1)()); s.spawn(rcv(2, 2)()); s.run()
    assert got == {1: True, 2: True}


def test_gtm_connection_serialized_too():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ])
    got = []

    def snd():
        m1 = vch.endpoint(0).begin_packing(2)
        m1.pack(payload(40_000, 1))
        e1 = m1.end_packing()
        m2 = vch.endpoint(0).begin_packing(2)
        m2.pack(payload(40_000, 2))
        e2 = m2.end_packing()
        yield e1
        yield e2

    def rcv():
        for seed in (1, 2):
            inc = yield vch.endpoint(2).begin_unpacking()
            _ev, b = inc.unpack(40_000)
            yield inc.end_unpacking()
            got.append(b.tobytes() == payload(40_000, seed).tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got == [True, True]


def test_two_workers_one_destination_no_interleave():
    """Both of the gateway's forwarding workers target the same final
    receiver at the same time: the connection lock must serialize them."""
    w = build_world({
        "m0": ["myrinet"], "gw": ["myrinet", "sci", "sbp"],
        "b0": ["sbp"], "s0": ["sci"],
    })
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
        s.channel("sbp", ["gw", "b0"]),
    ], packet_size=8 << 10)
    # messages from m0 (via the myrinet worker) and s0 (via the sci worker)
    # both forwarded to b0
    d_m, d_s = payload(60_000, 1), payload(50_000, 2)
    got = {}

    def snd(rank, data):
        def proc():
            m = vch.endpoint(rank).begin_packing(s.rank("b0"))
            yield m.pack(data)
            yield m.end_packing()
        return proc

    def rcv():
        sizes = {0: len(d_m), 3: len(d_s)}
        datas = {0: d_m, 3: d_s}
        for _ in range(2):
            inc = yield vch.endpoint(s.rank("b0")).begin_unpacking()
            _ev, b = inc.unpack(sizes[inc.origin])
            yield inc.end_unpacking()
            got[inc.origin] = b.tobytes() == datas[inc.origin].tobytes()

    s.spawn(snd(0, d_m)()); s.spawn(snd(s.rank("s0"), d_s)()); s.spawn(rcv())
    s.run()
    assert got == {0: True, 3: True}
