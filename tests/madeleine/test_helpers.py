"""Whole-message convenience helpers."""


from repro.hw import build_world
from repro.madeleine import (Session, recv_arrays, recv_message_into,
                             send_arrays)
from repro.memory import Buffer
from tests.conftest import payload


def setup():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=16 << 10)
    return w, s, vch


def test_send_recv_arrays_roundtrip():
    w, s, vch = setup()
    a, b = payload(1000, 1), payload(30_000, 2)
    got = {}

    def snd():
        yield from send_arrays(vch.endpoint(0), 2, a, b)

    def rcv():
        origin, bufs = yield from recv_arrays(vch.endpoint(2), 1000, 30_000)
        got["origin"] = origin
        got["data"] = [x.tobytes() for x in bufs]

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["origin"] == 0
    assert got["data"] == [a.tobytes(), b.tobytes()]


def test_recv_message_into_user_buffers():
    w, s, vch = setup()
    a = payload(5000)
    target = Buffer.alloc(5000)
    got = {}

    def snd():
        yield from send_arrays(vch.endpoint(2), 0, a)

    def rcv():
        origin = yield from recv_message_into(vch.endpoint(0), target)
        got["origin"] = origin

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["origin"] == 2
    assert target.tobytes() == a.tobytes()


def test_helpers_work_on_plain_channels():
    w = build_world({"a": ["sci"], "b": ["sci"]})
    s = Session(w)
    ch = s.channel("sci", ["a", "b"])
    data = payload(12_345)
    got = {}

    def snd():
        yield from send_arrays(ch.endpoint(0), 1, data)

    def rcv():
        origin, bufs = yield from recv_arrays(ch.endpoint(1), len(data))
        got["ok"] = bufs[0].tobytes() == data.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["ok"]
