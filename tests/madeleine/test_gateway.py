"""Gateway forwarding: the zero-copy matrix of §2.3, pipeline behaviour."""


from repro.hw import GatewayParams, build_world
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def chain(in_proto, out_proto, packet_size=16 << 10, gateway_params=None):
    """src(in_proto) -> gw(in+out) -> dst(out_proto)."""
    w = build_world({"src": [in_proto], "gw": [in_proto, out_proto],
                     "dst": [out_proto]})
    s = Session(w)
    ch_in = s.channel(in_proto, ["src", "gw"])
    ch_out = s.channel(out_proto, ["gw", "dst"])
    vch = s.virtual_channel([ch_in, ch_out], packet_size=packet_size,
                            gateway_params=gateway_params)
    return w, s, vch


GATEWAY_LABELS = {"gateway.static_copy"}


def gateway_copies(world):
    return {k: v for k, v in world.accounting.by_label().items()
            if k in GATEWAY_LABELS}


# -- the §2.3 zero-copy matrix --------------------------------------------------

def test_dynamic_to_dynamic_zero_gateway_copies():
    w, s, vch = chain("myrinet", "gigabit_tcp")
    data = payload(100_000)
    out = transfer_once(s, vch, 0, 2, data)
    assert out["buf"].tobytes() == data.tobytes()
    assert gateway_copies(w) == {}
    # fully dynamic path: no copies anywhere at all
    assert w.accounting.copies == 0


def test_static_rx_to_dynamic_tx_zero_gateway_copies():
    """SCI -> Myrinet: fragments land in the SCI segment block and are sent
    from it directly (the paper's primary direction)."""
    w, s, vch = chain("sci", "myrinet")
    data = payload(100_000)
    out = transfer_once(s, vch, 0, 2, data)
    assert out["buf"].tobytes() == data.tobytes()
    assert gateway_copies(w) == {}
    # only the SCI *origin* stages fragments (accounted as gtm.stage)
    assert set(w.accounting.by_label()) == {"gtm.stage"}


def test_dynamic_rx_to_static_tx_borrows_outgoing_buffer():
    """Myrinet -> SCI: the gateway receives straight into a block borrowed
    from the outgoing SCI TM (the §2.3 trick)."""
    w, s, vch = chain("myrinet", "sci")
    data = payload(100_000)
    out = transfer_once(s, vch, 0, 2, data)
    assert out["buf"].tobytes() == data.tobytes()
    assert gateway_copies(w) == {}
    # only the SCI *receiver* copies out of the landing block
    assert set(w.accounting.by_label()) == {"gtm.deliver"}


def test_static_to_static_exactly_one_gateway_copy():
    """SBP -> SCI: both sides demand protocol buffers; the paper concedes
    one unavoidable copy per fragment."""
    w, s, vch = chain("sbp", "sci")
    data = payload(100_000)
    out = transfer_once(s, vch, 0, 2, data)
    assert out["buf"].tobytes() == data.tobytes()
    copies = gateway_copies(w)
    # every payload byte once, plus the two 16-byte descriptor records
    # (buffer descriptor + terminator) that also transit the blocks
    from repro.madeleine import DESC_BYTES
    assert copies["gateway.static_copy"][1] == 100_000 + 2 * DESC_BYTES


def test_static_copy_costs_time():
    """The static x static copy is serial: same transfer must be slower than
    the borrowed-buffer direction at identical parameters."""
    data = payload(400_000)
    _w1, s1, v1 = chain("sci", "sbp")     # static x static (copy)
    t_copy = transfer_once(s1, v1, 0, 2, data)["t"]
    _w2, s2, v2 = chain("myrinet", "sbp")  # borrow (no copy)
    t_borrow = transfer_once(s2, v2, 0, 2, data)["t"]
    # Not directly comparable end-to-end (different first hops), so compare
    # against the same pair with memcpy made nearly free instead.
    from repro.hw import NodeParams
    w3 = build_world({"src": ["sci"], "gw": ["sci", "sbp"], "dst": ["sbp"]},
                     node_params=NodeParams(memcpy_bandwidth=1e9))
    s3 = Session(w3)
    ch_in = s3.channel("sci", ["src", "gw"])
    ch_out = s3.channel("sbp", ["gw", "dst"])
    v3 = s3.virtual_channel([ch_in, ch_out], packet_size=16 << 10)
    t_freecopy = transfer_once(s3, v3, 0, 2, data)["t"]
    assert t_copy > t_freecopy * 1.05


# -- pipeline behaviour ------------------------------------------------------------

def test_pipelining_beats_store_and_forward():
    """Depth 2 (the paper's double buffering) must beat depth 1."""
    data = payload(1_000_000)
    _w1, s1, v1 = chain("sci", "myrinet",
                        gateway_params=GatewayParams(pipeline_depth=1))
    t1 = transfer_once(s1, v1, 0, 2, data)["t"]
    _w2, s2, v2 = chain("sci", "myrinet",
                        gateway_params=GatewayParams(pipeline_depth=2))
    t2 = transfer_once(s2, v2, 0, 2, data)["t"]
    assert t2 < t1 * 0.75


def test_switch_overhead_hurts_bandwidth():
    data = payload(1_000_000)
    _w1, s1, v1 = chain("sci", "myrinet",
                        gateway_params=GatewayParams(switch_overhead=0.0))
    t_fast = transfer_once(s1, v1, 0, 2, data)["t"]
    _w2, s2, v2 = chain("sci", "myrinet",
                        gateway_params=GatewayParams(switch_overhead=160.0))
    t_slow = transfer_once(s2, v2, 0, 2, data)["t"]
    assert t_slow > t_fast


def test_larger_packets_amortize_overhead():
    data = payload(2_000_000)
    _w1, s1, v1 = chain("sci", "myrinet", packet_size=8 << 10)
    t_small = transfer_once(s1, v1, 0, 2, data)["t"]
    _w2, s2, v2 = chain("sci", "myrinet", packet_size=128 << 10)
    t_big = transfer_once(s2, v2, 0, 2, data)["t"]
    assert t_big < t_small


def test_gateway_trace_has_balanced_recv_send():
    w, s, vch = chain("sci", "myrinet", packet_size=16 << 10)
    data = payload(100_000)
    transfer_once(s, vch, 0, 2, data)
    recvs = w.trace.query(category="gateway", event="recv")
    sends = w.trace.query(category="gateway", event="send")
    assert len(recvs) == len(sends) > 0
    # fragments + descriptors + terminator
    n_frag_items = sum(1 for r in recvs if r["kind"] == "frag")
    assert n_frag_items == (100_000 + (16 << 10) - 1) // (16 << 10)


def test_messages_forwarded_counter():
    w, s, vch = chain("sci", "myrinet")
    transfer_once(s, vch, 0, 2, payload(10_000))
    assert sum(wk.messages_forwarded for wk in vch.workers) == 1


def test_sequential_messages_through_gateway():
    w, s, vch = chain("sci", "myrinet")
    datas = [payload(30_000, seed=i) for i in range(3)]
    got = []

    def snd():
        for d in datas:
            m = vch.endpoint(0).begin_packing(2)
            yield m.pack(d)
            yield m.end_packing()

    def rcv():
        for d in datas:
            inc = yield vch.endpoint(2).begin_unpacking()
            _ev, b = inc.unpack(len(d))
            yield inc.end_unpacking()
            got.append(b.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got == [d.tobytes() for d in datas]


def test_opposite_directions_simultaneously():
    """SCI->Myrinet and Myrinet->SCI messages crossing the same gateway at
    the same time (separate workers per incoming device)."""
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    vch = s.virtual_channel([myri, sci], packet_size=16 << 10)
    d_ms, d_sm = payload(200_000, 1), payload(200_000, 2)
    got = {}

    def endpoint(rank, data_out, n_in, key):
        def proc():
            m = vch.endpoint(rank).begin_packing(2 - rank)
            m.pack(data_out)
            sent = m.end_packing()
            inc = yield vch.endpoint(rank).begin_unpacking()
            _ev, b = inc.unpack(n_in)
            yield inc.end_unpacking()
            yield sent
            got[key] = b.tobytes()
        return proc

    s.spawn(endpoint(0, d_ms, len(d_sm), "at_m0")())
    s.spawn(endpoint(2, d_sm, len(d_ms), "at_s0")())
    s.run()
    assert got["at_m0"] == d_sm.tobytes()
    assert got["at_s0"] == d_ms.tobytes()


def test_gateway_app_traffic_coexists_with_forwarding():
    """The gateway is also a regular node (§2.2.2): it can receive its own
    messages while forwarding."""
    w, s, vch = chain("sci", "myrinet")
    d_fwd, d_gw = payload(100_000, 1), payload(50_000, 2)
    got = {}

    def src():
        m = vch.endpoint(0).begin_packing(2)   # forwarded
        m.pack(d_fwd)
        sent1 = m.end_packing()
        m2 = vch.endpoint(0).begin_packing(1)  # direct to gateway
        m2.pack(d_gw)
        sent2 = m2.end_packing()
        yield sent1
        yield sent2

    def gw_app():
        inc = yield vch.endpoint(1).begin_unpacking()
        _ev, b = inc.unpack(len(d_gw))
        yield inc.end_unpacking()
        got["gw"] = b.tobytes()

    def dst():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, b = inc.unpack(len(d_fwd))
        yield inc.end_unpacking()
        got["dst"] = b.tobytes()

    s.spawn(src()); s.spawn(gw_app()); s.spawn(dst()); s.run()
    assert got["gw"] == d_gw.tobytes()
    assert got["dst"] == d_fwd.tobytes()
