"""Virtual channels: transparency, routing dispatch, special twins."""

import pytest

from repro.hw import build_world
from repro.madeleine import (GTMOutgoing, OutgoingMessage, Session,
                             VirtualChannel)
from tests.conftest import payload, transfer_once


def paper_vch(packet_size=16 << 10):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    vch = s.virtual_channel([myri, sci], packet_size=packet_size)
    return w, s, myri, sci, vch


def test_members_and_gateways():
    _w, _s, _m, _sc, vch = paper_vch()
    assert vch.members == [0, 1, 2]
    assert vch.gateways == [1]
    assert len(vch.workers) == 2     # one per special channel at the gateway


def test_special_twins_created():
    _w, _s, myri, sci, vch = paper_vch()
    assert vch.special_twin(myri).special
    assert vch.special_twin(myri).protocol.name == "myrinet"
    assert vch.special_twin(sci).members == sci.members


def test_direct_send_uses_regular_message():
    _w, _s, _m, _sc, vch = paper_vch()
    msg = vch.endpoint(0).begin_packing(1)
    assert isinstance(msg, OutgoingMessage)


def test_forwarded_send_uses_gtm():
    _w, _s, _m, _sc, vch = paper_vch()
    msg = vch.endpoint(0).begin_packing(2)
    assert isinstance(msg, GTMOutgoing)
    assert msg.mtu == 16 << 10


def test_transparent_forwarding_end_to_end():
    w, s, _m, _sc, vch = paper_vch()
    data = payload(200_000)
    out = transfer_once(s, vch, src=2, dst=0, data=data)
    assert out["buf"].tobytes() == data.tobytes()
    assert out["origin"] == 2


def test_direct_message_on_vchannel_end_to_end():
    w, s, _m, _sc, vch = paper_vch()
    data = payload(50_000)
    out = transfer_once(s, vch, src=0, dst=1, data=data)
    assert out["buf"].tobytes() == data.tobytes()
    assert out["origin"] == 0


def test_receiver_cannot_tell_forwarded_from_direct():
    """The API surface of the incoming message is identical; only the
    (internal) class differs."""
    w, s, _m, _sc, vch = paper_vch()
    kinds = []

    def snd(src, dst, n):
        def proc():
            m = vch.endpoint(src).begin_packing(dst)
            yield m.pack(payload(n))
            yield m.end_packing()
        return proc

    def rcv(n):
        def proc():
            inc = yield vch.endpoint(1).begin_unpacking()
            kinds.append(type(inc).__name__)
            _ev, b = inc.unpack(n)
            yield inc.end_unpacking()
        return proc

    # gw receives one direct message (from m0) — route length 1.
    s.spawn(snd(0, 1, 1000)())
    s.spawn(rcv(1000)())
    s.run()
    assert kinds == ["IncomingMessage"]


def test_gtm_final_message_arrives_as_gtm_incoming():
    w, s, _m, _sc, vch = paper_vch()
    kinds = []

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(payload(1000))
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        kinds.append(type(inc).__name__)
        _ev, b = inc.unpack(1000)
        yield inc.end_unpacking()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert kinds == ["GTMIncoming"]


def test_forwarded_message_last_hop_on_regular_channel():
    """§2.2.2: once past the last gateway, messages travel on the regular
    channel (so regular nodes poll a single channel)."""
    w, s, myri, sci, vch = paper_vch()
    data = payload(64_000)
    transfer_once(s, vch, src=2, dst=0, data=data)
    frags = w.trace.query(category="xfer", event="fragment")
    # Hops toward the gateway use the special twin; the final hop must not.
    special_id = vch.special_twin(sci).id
    regular_last_hop = [r for r in frags if f"'{myri.id}'" in r["tag"]]
    special_first_hop = [r for r in frags if f"'{special_id}'" in r["tag"]]
    assert regular_last_hop, "last hop must use the regular channel"
    assert special_first_hop, "first hop must use the special channel"
    fwd_id = vch.special_twin(myri).id
    assert not [r for r in frags if f"'{fwd_id}'" in r["tag"]], \
        "final hop must not use the special twin"


def test_mtu_negotiation_through_sci():
    _w, _s, _m, _sc, vch = paper_vch(packet_size=1 << 20)
    # SCI's 128 KB limit binds.
    assert vch.mtu_for(0, 2) == 128 << 10


def test_endpoint_unknown_rank_rejected():
    _w, _s, _m, _sc, vch = paper_vch()
    with pytest.raises(KeyError):
        vch.endpoint(99)


def test_vchannel_requires_regular_channels():
    w, s, myri, sci, vch = paper_vch()
    with pytest.raises(ValueError):
        VirtualChannel([vch.special_twin(myri)])


def test_vchannel_requires_common_world():
    w1 = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    w2 = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s1, s2 = Session(w1), Session(w2)
    ch1 = s1.channel("myrinet", ["a", "b"])
    ch2 = s2.channel("myrinet", ["a", "b"])
    with pytest.raises(ValueError):
        VirtualChannel([ch1, ch2])


def test_empty_vchannel_rejected():
    with pytest.raises(ValueError):
        VirtualChannel([])


def test_multi_buffer_gtm_message():
    w, s, _m, _sc, vch = paper_vch()
    parts = [payload(n, seed=n) for n in (100, 40_000, 7, 90_000)]
    got = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        for p in parts:
            yield m.pack(p)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        bufs = []
        for p in parts:
            _ev, b = inc.unpack(len(p))
            bufs.append(b)
        yield inc.end_unpacking()
        got["parts"] = [b.tobytes() for b in bufs]

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["parts"] == [p.tobytes() for p in parts]


def test_gtm_descriptor_mismatch_detected():
    w, s, _m, _sc, vch = paper_vch()
    failures = []

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(payload(5000))
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, _b = inc.unpack(4999)   # descriptor says 5000
        try:
            yield inc.end_unpacking()
        except Exception as exc:
            failures.append(type(exc).__name__)

    s.spawn(snd()); s.spawn(rcv())
    try:
        s.run()
    except Exception as exc:
        failures.append(type(exc).__name__)
    assert failures


def test_gtm_message_to_gateway_itself_is_direct():
    """gw is one hop from everyone: messages TO the gateway never use GTM."""
    _w, _s, _m, _sc, vch = paper_vch()
    assert isinstance(vch.endpoint(2).begin_packing(1), OutgoingMessage)
    assert isinstance(vch.endpoint(0).begin_packing(1), OutgoingMessage)
