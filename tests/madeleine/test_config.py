"""Declarative configuration front-end."""

import json

import pytest

from repro.madeleine import Session
from repro.madeleine.config import ConfigError, load_config, load_config_file
from tests.conftest import payload, transfer_once

PAPER_CFG = {
    "nodes": {
        "m0": ["myrinet"],
        "gw": ["myrinet", "sci"],
        "s0": ["sci"],
    },
    "channels": {
        "myri": {"protocol": "myrinet", "members": ["m0", "gw"]},
        "sci": {"protocol": "sci", "members": ["gw", "s0"]},
    },
    "virtual_channels": {
        "world": {"channels": ["myri", "sci"], "packet_size": 65536,
                  "gateway": {"switch_overhead": 40.0}},
    },
}


def test_full_config_builds_working_session():
    session, channels, vchannels = load_config(PAPER_CFG)
    assert isinstance(session, Session)
    assert set(channels) == {"myri", "sci"}
    assert set(vchannels) == {"world"}
    vch = vchannels["world"]
    assert vch.packet_size == 65536
    data = payload(100_000)
    out = transfer_once(session, vch, session.rank("s0"),
                        session.rank("m0"), data)
    assert out["buf"].tobytes() == data.tobytes()


def test_node_params_from_config():
    cfg = dict(PAPER_CFG)
    cfg["node_params"] = {"memcpy_bandwidth": 250.0,
                          "pci": {"pio_preempt_slowdown": 3.0}}
    session, _c, _v = load_config(cfg)
    node = session.world.node("gw")
    assert node.params.memcpy_bandwidth == 250.0
    assert node.pci.preempt_slowdown == 3.0


def test_missing_nodes_rejected():
    with pytest.raises(ConfigError):
        load_config({"channels": {}})
    with pytest.raises(ConfigError):
        load_config({"nodes": {}})


def test_unknown_top_level_key_rejected():
    with pytest.raises(ConfigError, match="unknown top-level"):
        load_config({"nodes": {"a": []}, "typo": {}})


def test_channel_missing_fields_rejected():
    with pytest.raises(ConfigError, match="missing required key"):
        load_config({"nodes": {"a": ["myrinet"], "b": ["myrinet"]},
                     "channels": {"c": {"protocol": "myrinet"}}})


def test_channel_bad_protocol_rejected():
    with pytest.raises(ConfigError, match="channel 'c'"):
        load_config({"nodes": {"a": ["myrinet"], "b": ["myrinet"]},
                     "channels": {"c": {"protocol": "warp", "members":
                                        ["a", "b"]}}})


def test_vchannel_unknown_member_rejected():
    cfg = {
        "nodes": {"a": ["myrinet"], "b": ["myrinet"]},
        "channels": {"c": {"protocol": "myrinet", "members": ["a", "b"]}},
        "virtual_channels": {"v": {"channels": ["nope"]}},
    }
    with pytest.raises(ConfigError, match="unknown channel 'nope'"):
        load_config(cfg)


def test_vchannel_bad_gateway_option_rejected():
    cfg = {
        "nodes": {"a": ["myrinet"], "b": ["myrinet"]},
        "channels": {"c": {"protocol": "myrinet", "members": ["a", "b"]}},
        "virtual_channels": {"v": {"channels": ["c"],
                                   "gateway": {"turbo": True}}},
    }
    with pytest.raises(ConfigError, match="unknown gateway option"):
        load_config(cfg)


def test_non_mapping_rejected():
    with pytest.raises(ConfigError):
        load_config([1, 2, 3])


def test_load_config_file(tmp_path):
    path = tmp_path / "session.json"
    path.write_text(json.dumps(PAPER_CFG), encoding="utf-8")
    session, channels, vchannels = load_config_file(path)
    assert set(vchannels) == {"world"}


def test_load_config_file_bad_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ConfigError, match="invalid JSON"):
        load_config_file(path)
