"""GTM header batching (§2.3): descriptors piggyback on payload fragments.

Opt-in per virtual channel (``header_batching=True``); negotiated through
the announce's batched flag so receivers and gateways need no out-of-band
agreement.  Batching must preserve data integrity in both directions
(static-rx SCI side and dynamic Myrinet side exercise different landing
paths) while strictly reducing — never increasing — the number of wire
records of a forwarded message.
"""

import pytest

from repro.hw import build_world
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def batched_testbed(header_batching=True, packet_size=16 << 10):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gw"])
    sci = s.channel("sci", ["gw", "s0"])
    vch = s.virtual_channel([myri, sci], packet_size=packet_size,
                            header_batching=header_batching)
    return w, s, vch


def wire_records(world):
    return world.trace.query(category="xfer", event="fragment")


@pytest.mark.parametrize("n", [1, 1000, 16368, 16369, 40_000, 200_000])
@pytest.mark.parametrize("src,dst", [(2, 0), (0, 2)],
                         ids=["sci-to-myri", "myri-to-sci"])
def test_batched_transfer_delivers_identical_data(n, src, dst):
    w, s, vch = batched_testbed()
    data = payload(n, seed=n)
    out = transfer_once(s, vch, src=src, dst=dst, data=data)
    assert out["buf"].tobytes() == data.tobytes()
    assert out["origin"] == src


@pytest.mark.parametrize("src,dst", [(2, 0), (0, 2)],
                         ids=["sci-to-myri", "myri-to-sci"])
def test_batching_reduces_wire_records(src, dst):
    data = payload(100_000, seed=3)
    w_plain, s_plain, vch_plain = batched_testbed(header_batching=False)
    transfer_once(s_plain, vch_plain, src=src, dst=dst, data=data)
    w_batch, s_batch, vch_batch = batched_testbed(header_batching=True)
    transfer_once(s_batch, vch_batch, src=src, dst=dst, data=data)
    plain, batched = len(wire_records(w_plain)), len(wire_records(w_batch))
    # One data descriptor per hop is absorbed into a payload record; only
    # the terminator still travels alone.
    assert batched == plain - 2


def test_batching_never_adds_records_at_mtu_straddle():
    # A payload in (mtu - 16, mtu] loses its descriptor record but gains a
    # tail fragment: the counts must then be equal, never worse.
    mtu = 16 << 10
    data = payload(mtu, seed=5)
    w_plain, s_plain, vch_plain = batched_testbed(header_batching=False)
    transfer_once(s_plain, vch_plain, src=2, dst=0, data=data)
    w_batch, s_batch, vch_batch = batched_testbed(header_batching=True)
    transfer_once(s_batch, vch_batch, src=2, dst=0, data=data)
    assert len(wire_records(w_batch)) == len(wire_records(w_plain))


def test_zero_length_buffer_roundtrips_batched():
    w, s, vch = batched_testbed()
    data = payload(0)
    out = transfer_once(s, vch, src=2, dst=0, data=data)
    assert out["buf"].tobytes() == b""


def test_multi_buffer_batched_message():
    w, s, vch = batched_testbed()
    parts = [payload(n, seed=n) for n in (100, 40_000, 0, 7, 90_000)]
    got = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        for p in parts:
            yield m.pack(p)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        assert inc.batched
        bufs = []
        for p in parts:
            _ev, b = inc.unpack(len(p))
            bufs.append(b)
        yield inc.end_unpacking()
        got["parts"] = [b.tobytes() for b in bufs]

    s.spawn(snd())
    s.spawn(rcv())
    s.run()
    assert got["parts"] == [p.tobytes() for p in parts]


def test_batched_descriptor_mismatch_detected():
    w, s, vch = batched_testbed()
    failures = []

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(payload(5000))
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, _b = inc.unpack(4999)   # descriptor says 5000
        try:
            yield inc.end_unpacking()
        except Exception as exc:
            failures.append(type(exc).__name__)

    s.spawn(snd())
    s.spawn(rcv())
    try:
        s.run()
    except Exception as exc:
        failures.append(type(exc).__name__)
    assert failures


def test_announce_carries_the_negotiated_flag():
    _w, s, vch = batched_testbed(header_batching=True)
    m = vch.endpoint(0).begin_packing(2)
    assert m.batched
    _w2, s2, vch2 = batched_testbed(header_batching=False)
    m2 = vch2.endpoint(0).begin_packing(2)
    assert not m2.batched
