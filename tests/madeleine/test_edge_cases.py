"""Edge cases and robustness: minimal pools, zero-length data, coexisting
virtual channels."""

import pytest

from repro.hw import PROTOCOLS, SCI, build_world, register_protocol, scaled
from repro.hw import GatewayParams
from repro.madeleine import Session
from tests.conftest import payload, transfer_once

if "sci_tinypool" not in PROTOCOLS:
    register_protocol(scaled(SCI, name="sci_tinypool", pool_blocks=2))


def test_forwarding_with_minimal_pools_completes():
    """pool_blocks=2 is the bare minimum for the double-buffer pipeline;
    everything must still complete (backpressure, not deadlock)."""
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci_tinypool"],
                     "s0": ["sci_tinypool"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci_tinypool", ["gw", "s0"]),
    ], packet_size=16 << 10)
    data = payload(500_000)
    out = transfer_once(s, vch, 0, 2, data)
    assert out["buf"].tobytes() == data.tobytes()


def test_minimal_pools_with_deep_decoupled_pipeline():
    """A pipeline depth larger than the pool must degrade gracefully to the
    pool's limit, not deadlock."""
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci_tinypool"],
                     "s0": ["sci_tinypool"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci_tinypool", ["gw", "s0"]),
    ], packet_size=16 << 10,
        gateway_params=GatewayParams(pipeline_depth=4, lockstep=False))
    data = payload(300_000)
    out = transfer_once(s, vch, 0, 2, data)
    assert out["buf"].tobytes() == data.tobytes()


def test_zero_length_pack_roundtrip():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b"])
    done = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(payload(0))
        yield m.pack(payload(100))
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        _e1, b1 = inc.unpack(0)
        _e2, b2 = inc.unpack(100)
        yield inc.end_unpacking()
        done["ok"] = len(b1) == 0 and b2.tobytes() == payload(100).tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert done["ok"]


def test_zero_length_pack_through_gateway():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ])
    done = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(payload(0))
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, b = inc.unpack(0)
        yield inc.end_unpacking()
        done["n"] = len(b)

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert done["n"] == 0


def test_two_virtual_channels_coexist():
    """Two vchannels over the same adapters: independent worlds of traffic,
    each with its own gateway workers."""
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)

    def make_vch():
        return s.virtual_channel([
            s.channel("myrinet", ["m0", "gw"]),
            s.channel("sci", ["gw", "s0"]),
        ], packet_size=16 << 10)

    vch1, vch2 = make_vch(), make_vch()
    d1, d2 = payload(50_000, 1), payload(70_000, 2)
    got = {}

    def snd(vch, data):
        def proc():
            m = vch.endpoint(0).begin_packing(2)
            yield m.pack(data)
            yield m.end_packing()
        return proc

    def rcv(vch, key, n):
        def proc():
            inc = yield vch.endpoint(2).begin_unpacking()
            _ev, b = inc.unpack(n)
            yield inc.end_unpacking()
            got[key] = b.tobytes()
        return proc

    s.spawn(snd(vch1, d1)()); s.spawn(snd(vch2, d2)())
    s.spawn(rcv(vch1, "v1", len(d1))()); s.spawn(rcv(vch2, "v2", len(d2))())
    s.run()
    assert got["v1"] == d1.tobytes()
    assert got["v2"] == d2.tobytes()
    assert sum(wk.messages_forwarded for wk in vch1.workers) == 1
    assert sum(wk.messages_forwarded for wk in vch2.workers) == 1


def test_packet_size_below_1kb_rejected():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=512)
    with pytest.raises(ValueError):
        vch.endpoint(0).begin_packing(2)


def test_unpack_argument_validation():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ch = s.channel("myrinet", ["a", "b"])
    errors = {}

    def snd():
        m = ch.endpoint(0).begin_packing(1)
        yield m.pack(payload(10))
        yield m.end_packing()

    def rcv():
        inc = yield ch.endpoint(1).begin_unpacking()
        with pytest.raises(ValueError):
            inc.unpack()             # neither nbytes nor buffer
        from repro.memory import Buffer
        with pytest.raises(ValueError):
            inc.unpack(5, into=Buffer.alloc(10))   # contradictory
        _ev, _b = inc.unpack(10)
        yield inc.end_unpacking()
        errors["done"] = True

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert errors["done"]
