"""The N-deep credit pipeline and the adaptive fragment tuner."""

import pytest

from repro.hw import GatewayParams, PipelineConfig, build_world
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def forward(packet=8 << 10, size=1_000_000, gateway_params=None,
            pipeline=None, telemetry=False, direction="sci->myri"):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w, telemetry=telemetry)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=packet, gateway_params=gateway_params, pipeline=pipeline)
    src, dst = (2, 0) if direction == "sci->myri" else (0, 2)
    out = transfer_once(s, vch, src, dst, payload(size))
    return w, s, out


# -- config ------------------------------------------------------------------

def test_pipeline_config_validation():
    with pytest.raises(ValueError):
        PipelineConfig(depth=0)
    with pytest.raises(ValueError):
        PipelineConfig(depth=4, credits=5)
    with pytest.raises(ValueError):
        PipelineConfig(depth=4, credits=0)
    with pytest.raises(ValueError):
        PipelineConfig(depth=4, lockstep=True)
    with pytest.raises(ValueError):
        PipelineConfig(tuner_slack=1.5)


def test_config_defaults_are_paper_faithful():
    cfg = PipelineConfig()
    assert cfg.depth == 2 and cfg.effective_credits == 2
    assert cfg.is_lockstep and not cfg.adaptive_mtu


def test_legacy_params_map_onto_pipeline_config():
    assert GatewayParams().resolved_pipeline.is_lockstep
    legacy = GatewayParams(pipeline_depth=4, lockstep=False).resolved_pipeline
    assert legacy.depth == 4 and not legacy.is_lockstep
    # a legacy non-depth-2 "lockstep" silently ran the decoupled queue
    assert not GatewayParams(pipeline_depth=3).resolved_pipeline.is_lockstep
    explicit = PipelineConfig(depth=8, credits=3)
    assert GatewayParams(pipeline=explicit).resolved_pipeline is explicit


# -- schedule preservation ---------------------------------------------------

def test_depth2_config_reduces_to_lockstep_schedule():
    """PipelineConfig(depth=2) must be bit-identical to the legacy default."""
    _w1, _s1, legacy = forward()
    _w2, _s2, cfg = forward(pipeline=PipelineConfig(depth=2))
    assert cfg["t"] == legacy["t"]


# -- the deep pipeline pays where the swap overhead dominates ---------------

def test_depth4_beats_depth2_on_small_fragments():
    _w1, _s1, d2 = forward(packet=8 << 10)
    _w2, _s2, d4 = forward(packet=8 << 10, pipeline=PipelineConfig(depth=4))
    assert d4["t"] < d2["t"]


def test_depth4_tuned_gains_at_least_ten_percent():
    """The tentpole acceptance criterion, as a unit test."""
    _w1, _s1, base = forward(packet=8 << 10)
    _w2, _s2, tuned = forward(packet=8 << 10,
                              pipeline=PipelineConfig(depth=4,
                                                      adaptive_mtu=True))
    assert base["t"] / tuned["t"] >= 1.10


def test_single_credit_serializes_steps():
    """credits=1 degenerates to store-and-forward per fragment even with a
    deep ring."""
    from repro.analysis import extract_timeline
    w, _s, _out = forward(size=500_000,
                          pipeline=PipelineConfig(depth=4, credits=1))
    steps = [s for s in extract_timeline(w.trace) if s.kind == "frag"]
    assert len(steps) > 2
    for a, b in zip(steps, steps[1:]):
        assert b.recv_start >= a.send_end - 1e-9


def test_deep_pipeline_delivers_payload_intact():
    data = payload(300_000)
    for pipeline in (PipelineConfig(depth=4),
                     PipelineConfig(depth=8, credits=4),
                     PipelineConfig(depth=4, adaptive_mtu=True)):
        _w, _s, out = forward(size=300_000, pipeline=pipeline)
        assert out["buf"].tobytes() == data.tobytes()


# -- telemetry ---------------------------------------------------------------

def test_credit_stalls_counted_when_send_bound():
    # Myrinet -> SCI: the PIO-slowed SCI send is the bottleneck, so the
    # receive thread runs out of credits and waits on the send thread.
    _w, s, _out = forward(direction="myri->sci", telemetry=True,
                          pipeline=PipelineConfig(depth=2, lockstep=False))
    assert s.metrics.total("gateway.credit_stalls") > 0


def test_occupancy_gauge_is_per_direction():
    _w, s, _out = forward(telemetry=True)
    series = s.metrics.series("gateway.occupancy")
    assert series and all("channel" in inst.labels for inst in series)


def test_ring_depth_histogram_tracks_dynamic_staging():
    # myrinet -> gigabit_tcp is dynamic x dynamic: staging comes from the
    # worker's private ring.
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "gigabit_tcp"],
                     "t0": ["gigabit_tcp"]})
    s = Session(w, telemetry=True)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("gigabit_tcp", ["gw", "t0"]),
    ], packet_size=16 << 10, pipeline=PipelineConfig(depth=4))
    transfer_once(s, vch, 0, 2, payload(200_000))
    hist = s.metrics.series("gateway.ring_depth")
    assert sum(h.count for h in hist) > 0
    worker = next(w_ for w_ in vch.workers
                  if w_.in_channel.protocol.name == "myrinet")
    assert worker._ring is not None
    assert worker._ring.count == 4
    # every staged block came home
    assert worker._ring.available == worker._ring.count


# -- retire with acquires pending -------------------------------------------

def test_retire_with_pending_ring_acquires_leaks_nothing():
    """A worker blocked on its staging ring exits on retire(): no stranded
    waiter, no double release, and the held blocks return cleanly."""
    import numpy as np
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "gigabit_tcp"],
                     "t0": ["gigabit_tcp"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("gigabit_tcp", ["gw", "t0"]),
    ], packet_size=16 << 10)
    worker = next(w_ for w_ in vch.workers
                  if w_.in_channel.protocol.name == "myrinet")
    ring = worker._staging_ring(vch.mtu_for(0, 2))
    held = [ring.try_acquire() for _ in range(ring.count)]

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(np.zeros(100_000, dtype=np.uint8))
        yield m.end_packing()

    s.spawn(snd())
    s.sim.run()
    # the worker is wedged on the exhausted ring
    assert len(ring._waiters) == 1
    assert not worker.process.triggered
    worker.retire()
    s.sim.run()
    assert not ring._waiters          # no leaked waiter
    assert worker.process.triggered   # the worker exited
    for b in held:
        ring.release(b)               # no double-release errors
    assert ring.available == ring.count
