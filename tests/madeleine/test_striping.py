"""End-to-end multirail striping: split at the sender, per-rail gateway
pipelines, in-order reassembly at the final receiver."""

import pytest

from repro.hw import build_world
from repro.madeleine import GTMOutgoing, Session, StripedOutgoing
from repro.madeleine.bmm import UnpackMismatch
from repro.madeleine.flags import RecvMode, SendMode
from repro.routing import StripePolicy
from tests.conftest import payload, transfer_once


def striped_session(telemetry=False, policy=None, packet_size=16 << 10):
    """Two Myrinet/SCI gateways between the clusters, striping enabled."""
    w = build_world({
        "m0": ["myrinet"],
        "gwA": ["myrinet", "sci"],
        "gwB": ["myrinet", "sci"],
        "s0": ["sci"],
    })
    s = Session(w, telemetry=telemetry)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    vch = s.virtual_channel([myri, sci], packet_size=packet_size,
                            stripe_policy=policy or StripePolicy())
    return w, s, vch


def forwarded_per_gateway(w, vch):
    return {w.nodes[wk.gw_rank].name: wk.messages_forwarded
            for wk in vch.workers if wk.messages_forwarded}


def test_striped_transfer_uses_both_gateways():
    w, s, vch = striped_session()
    data = payload(100_000)
    out = transfer_once(s, vch, 0, 3, data)
    assert out["buf"].tobytes() == data.tobytes()
    assert out["origin"] == 0
    per_gw = forwarded_per_gateway(w, vch)
    assert sorted(per_gw) == ["gwA", "gwB"]    # one stripe through each


def test_striped_message_type_and_fallbacks():
    _w, _s, vch = striped_session()
    assert isinstance(vch._begin_packing(0, 3), StripedOutgoing)
    # a single disjoint route (gateway on the same cloud) is not striped
    assert not isinstance(vch._begin_packing(0, 1), StripedOutgoing)

    # ... and a single-gateway topology falls back entirely
    w2 = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                      "s0": ["sci"]})
    s2 = Session(w2)
    vch2 = s2.virtual_channel(
        [s2.channel("myrinet", ["m0", "gw"]), s2.channel("sci", ["gw", "s0"])],
        stripe_policy=StripePolicy())
    assert isinstance(vch2._begin_packing(0, 2), GTMOutgoing)


def test_stripe_policy_single_gateway_transfer_falls_back():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel(
        [s.channel("myrinet", ["m0", "gw"]), s.channel("sci", ["gw", "s0"])],
        stripe_policy=StripePolicy())
    data = payload(50_000)
    assert transfer_once(s, vch, 0, 2, data)["buf"].tobytes() \
        == data.tobytes()


def test_striped_multi_buffer_in_order_with_zero_length():
    _w, s, vch = striped_session()
    bufs = [payload(40_000, 1), payload(0, 2), payload(24_000, 3)]
    got = {}

    def snd():
        m = vch.endpoint(0).begin_packing(3)
        for b in bufs:
            yield m.pack(b)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(3).begin_unpacking()
        pairs = [inc.unpack(len(b)) for b in bufs]
        yield inc.end_unpacking()
        got["bufs"] = [b.tobytes() for _ev, b in pairs]

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["bufs"] == [b.tobytes() for b in bufs]


def test_striped_later_deferred_to_end():
    _w, s, vch = striped_session()
    d1, d2 = payload(30_000, 1), payload(40_000, 2)
    got = {}

    def snd():
        m = vch.endpoint(0).begin_packing(3)
        yield m.pack(d1, SendMode.LATER, RecvMode.CHEAPER)
        yield m.pack(d2)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(3).begin_unpacking()
        _e1, b1 = inc.unpack(30_000, SendMode.LATER, RecvMode.CHEAPER)
        _e2, b2 = inc.unpack(40_000)
        yield inc.end_unpacking()
        got["ok"] = (b1.tobytes() == d1.tobytes()
                     and b2.tobytes() == d2.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["ok"]


def test_striped_unpack_size_mismatch_detected():
    _w, s, vch = striped_session()
    errors = []

    def snd():
        m = vch.endpoint(0).begin_packing(3)
        yield m.pack(payload(50_000))
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(3).begin_unpacking()
        ev, _b = inc.unpack(40_000)        # wrong: stripes announce 50 000
        try:
            yield ev
        except UnpackMismatch:
            errors.append("mismatch")

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert errors == ["mismatch"]


def test_striping_telemetry():
    w, s, vch = striped_session(telemetry=True)
    data = payload(100_000)
    out = transfer_once(s, vch, 0, 3, data)
    assert out["buf"].tobytes() == data.tobytes()
    m = w.telemetry.metrics
    assert m.counter("vchannel.stripes_sent", vchannel=vch.name).value == 2
    depth = m.histogram("vchannel.stripe_reassembly_depth",
                        bounds=(1.0, 2.0, 4.0, 8.0), vchannel=vch.name)
    assert depth.count == 1 and depth.mean == 2.0     # both rails carried data
    for rail in (0, 1):
        g = m.gauge("vchannel.rail_occupancy", vchannel=vch.name, rail=rail)
        assert g.hwm > 0        # bytes were in flight on this rail...
        assert g.value == 0     # ...and all of them drained


def test_small_paquet_rides_one_rail():
    w, s, vch = striped_session(telemetry=True)
    data = payload(6_000)      # below 2 * min_stripe: not worth splitting
    out = transfer_once(s, vch, 0, 3, data)
    assert out["buf"].tobytes() == data.tobytes()
    depth = w.telemetry.metrics.histogram(
        "vchannel.stripe_reassembly_depth",
        bounds=(1.0, 2.0, 4.0, 8.0), vchannel=vch.name)
    assert depth.count == 1 and depth.mean == 1.0


def test_back_to_back_striped_messages():
    _w, s, vch = striped_session()
    datas = [payload(60_000, seed) for seed in range(1, 4)]
    got = []

    def snd():
        for d in datas:
            m = vch.endpoint(0).begin_packing(3)
            yield m.pack(d)
            yield m.end_packing()

    def rcv():
        for d in datas:
            inc = yield vch.endpoint(3).begin_unpacking()
            _ev, b = inc.unpack(len(d))
            yield inc.end_unpacking()
            got.append(b.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert sorted(got) == sorted(d.tobytes() for d in datas)


# ------------------------------------------------- dual-NIC direct rails


def dual_nic_session(telemetry=False):
    w = build_world({"a0": ["myrinet", "myrinet"],
                     "b0": ["myrinet", "myrinet"]})
    s = Session(w, telemetry=telemetry)
    rail0 = s.channel("myrinet", ["a0", "b0"])
    rail1 = s.channel("myrinet", ["a0", "b0"],
                      adapter_index={"a0": 1, "b0": 1})
    vch = s.virtual_channel([rail0, rail1], stripe_policy=StripePolicy())
    return w, s, vch, rail0, rail1


def test_adapter_index_mapping_binds_distinct_nics():
    w, s, _vch, rail0, rail1 = dual_nic_session()
    a0, b0 = s.rank("a0"), s.rank("b0")
    assert rail0.adapter_index_for(a0) == 0
    assert rail1.adapter_index_for(a0) == 1
    assert rail1.adapter_index_for(999) == 0   # non-members default to 0
    for rank, name in ((a0, "a0"), (b0, "b0")):
        node = w.nodes[rank]
        assert rail0.endpoint(rank).tm.nic is node.nic("myrinet", 0)
        assert rail1.endpoint(rank).tm.nic is node.nic("myrinet", 1)


def test_adapter_index_rejects_missing_adapter():
    w = build_world({"a0": ["myrinet"], "b0": ["myrinet", "myrinet"]})
    s = Session(w)
    with pytest.raises(KeyError):
        s.channel("myrinet", ["a0", "b0"],
                  adapter_index={"a0": 1, "b0": 1})


def test_dual_nic_striping_uses_both_rails():
    w, s, vch, _r0, _r1 = dual_nic_session(telemetry=True)
    data = payload(100_000)
    out = transfer_once(s, vch, 0, 1, data)
    assert out["buf"].tobytes() == data.tobytes()
    m = w.telemetry.metrics
    for rail in (0, 1):
        g = m.gauge("vchannel.rail_occupancy", vchannel=vch.name, rail=rail)
        assert g.hwm > 0 and g.value == 0
