"""Unit and property tests for the announce / descriptor wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.madeleine import (ANNOUNCE_BYTES, DESC_BYTES, MODE_GTM,
                             MODE_REGULAR, Announce, Descriptor,
                             decode_announce, decode_descriptor,
                             encode_announce, encode_descriptor)
from repro.madeleine.flags import RecvMode, SendMode


def test_sizes_documented():
    assert ANNOUNCE_BYTES == 12
    assert DESC_BYTES == 16


def test_announce_roundtrip_basic():
    a = Announce(mode=MODE_GTM, origin=3, final_dst=7, mtu=16 << 10,
                 msg_id=12345, hops_left=2)
    assert decode_announce(encode_announce(a)) == a


def test_announce_rejects_bad_mode():
    with pytest.raises(ValueError):
        Announce(mode=9, origin=0, final_dst=1, mtu=1024, msg_id=1)


def test_announce_rejects_unaligned_mtu():
    with pytest.raises(ValueError):
        Announce(mode=MODE_REGULAR, origin=0, final_dst=1, mtu=1500, msg_id=1)


def test_descriptor_roundtrip_basic():
    d = Descriptor(length=123456, smode=SendMode.SAFER, rmode=RecvMode.EXPRESS)
    assert decode_descriptor(encode_descriptor(d)) == d


def test_terminator():
    t = Descriptor(length=0, terminator=True)
    assert t.is_terminator
    assert decode_descriptor(encode_descriptor(t)).is_terminator
    assert not Descriptor(length=1).is_terminator
    # a genuinely empty data record is NOT a terminator
    assert not Descriptor(length=0).is_terminator
    assert not decode_descriptor(
        encode_descriptor(Descriptor(length=0))).is_terminator


def test_terminator_with_payload_rejected():
    with pytest.raises(ValueError):
        Descriptor(length=5, terminator=True)


def test_decode_rejects_trailing_bytes():
    # Trailing garbage used to be silently sliced off; a forwarded stream
    # that framed records wrongly went undetected.  Now it is an error.
    d = Descriptor(length=10)
    raw = encode_descriptor(d) + b"garbage"
    with pytest.raises(ValueError, match="exactly 16 bytes"):
        decode_descriptor(raw)


def test_announce_boundary_values_roundtrip():
    a = Announce(mode=MODE_GTM, origin=0xFFFF, final_dst=0,
                 mtu=0xFFFF << 10, msg_id=2**32 - 1, hops_left=255)
    assert decode_announce(encode_announce(a)) == a


def test_encode_announce_rejects_oversized_mtu():
    # 64 MiB packs as 0x10000 KB, which silently wrapped to 0 in the H
    # field — the receiver then negotiated a zero MTU.
    a = Announce(mode=MODE_GTM, origin=0, final_dst=1, mtu=64 << 20, msg_id=1)
    with pytest.raises(ValueError, match="mtu"):
        encode_announce(a)


@pytest.mark.parametrize("field,value", [
    ("origin", 0x10000), ("final_dst", 0x10000),
    ("msg_id", 2**32), ("hops_left", 256),
    ("origin", -1), ("msg_id", -1),
])
def test_encode_announce_rejects_out_of_range_fields(field, value):
    kwargs = dict(mode=MODE_GTM, origin=0, final_dst=1,
                  mtu=16 << 10, msg_id=1, hops_left=1)
    kwargs[field] = value
    with pytest.raises(ValueError, match=field):
        encode_announce(Announce(**kwargs))


def test_encode_descriptor_rejects_oversized_length():
    with pytest.raises(ValueError, match="length"):
        encode_descriptor(Descriptor(length=2**32))


def test_decode_announce_rejects_short_input():
    raw = encode_announce(Announce(mode=MODE_REGULAR, origin=0, final_dst=1,
                                   mtu=16 << 10, msg_id=7))
    # Truncation used to surface as a bare struct.error deep in the stack.
    with pytest.raises(ValueError, match=f"exactly {ANNOUNCE_BYTES} bytes"):
        decode_announce(raw[:-1])
    with pytest.raises(ValueError, match=f"exactly {ANNOUNCE_BYTES} bytes"):
        decode_announce(raw + b"\x00")
    with pytest.raises(ValueError, match=f"exactly {ANNOUNCE_BYTES} bytes"):
        decode_announce(b"")


def test_decode_descriptor_rejects_short_input():
    raw = encode_descriptor(Descriptor(length=10))
    with pytest.raises(ValueError, match="exactly 16 bytes"):
        decode_descriptor(raw[:8])
    with pytest.raises(ValueError, match="exactly 16 bytes"):
        decode_descriptor(b"")


def test_announce_batched_flag_roundtrip():
    a = Announce(mode=MODE_GTM, origin=2, final_dst=5, mtu=16 << 10,
                 msg_id=99, hops_left=1, batched=True)
    got = decode_announce(encode_announce(a))
    assert got == a
    assert got.batched
    # ...and the flag does not leak into the mode of an unbatched record.
    plain = decode_announce(encode_announce(
        Announce(mode=MODE_GTM, origin=2, final_dst=5, mtu=16 << 10,
                 msg_id=99, hops_left=1)))
    assert not plain.batched
    assert plain.mode == MODE_GTM


@given(mode=st.sampled_from([MODE_REGULAR, MODE_GTM]),
       origin=st.integers(0, 65535),
       final_dst=st.integers(0, 65535),
       mtu_kb=st.integers(0, 65535),
       msg_id=st.integers(0, 2**32 - 1),
       hops=st.integers(0, 255),
       batched=st.booleans())
def test_announce_roundtrip_property(mode, origin, final_dst, mtu_kb,
                                     msg_id, hops, batched):
    a = Announce(mode=mode, origin=origin, final_dst=final_dst,
                 mtu=mtu_kb * 1024, msg_id=msg_id, hops_left=hops,
                 batched=batched)
    assert decode_announce(encode_announce(a)) == a


@given(length=st.integers(0, 2**32 - 1),
       smode=st.sampled_from(list(SendMode)),
       rmode=st.sampled_from(list(RecvMode)),
       terminator=st.booleans())
def test_descriptor_roundtrip_property(length, smode, rmode, terminator):
    if terminator:
        length = 0
    d = Descriptor(length=length, smode=smode, rmode=rmode,
                   terminator=terminator)
    got = decode_descriptor(encode_descriptor(d))
    assert got == d
    assert got.is_terminator == terminator


# ---------------------------------------------------------------- stripes


def test_stripe_sizes_documented():
    from repro.madeleine import STRIPE_BYTES
    assert STRIPE_BYTES == 16


def test_stripe_roundtrip_basic():
    from repro.madeleine import StripeRecord, decode_stripe, encode_stripe
    s = StripeRecord(stripe_id=77, seq=1, total=3)
    assert decode_stripe(encode_stripe(s)) == s


def test_stripe_rejects_seq_outside_group():
    from repro.madeleine import StripeRecord
    with pytest.raises(ValueError, match="seq"):
        StripeRecord(stripe_id=1, seq=2, total=2)
    with pytest.raises(ValueError, match="seq"):
        StripeRecord(stripe_id=1, seq=-1, total=2)
    with pytest.raises(ValueError, match="rail"):
        StripeRecord(stripe_id=1, seq=0, total=0)


@pytest.mark.parametrize("field,value", [
    ("stripe_id", 2**32), ("stripe_id", -1),
    ("total", 0x10000),
])
def test_encode_stripe_rejects_out_of_range_fields(field, value):
    from repro.madeleine import StripeRecord, encode_stripe
    kwargs = dict(stripe_id=1, seq=0, total=2)
    kwargs[field] = value
    with pytest.raises(ValueError, match=field):
        encode_stripe(StripeRecord(**kwargs))


def test_decode_stripe_rejects_wrong_length():
    from repro.madeleine import (STRIPE_BYTES, StripeRecord, decode_stripe,
                                 encode_stripe)
    raw = encode_stripe(StripeRecord(stripe_id=9, seq=0, total=2))
    with pytest.raises(ValueError, match=f"exactly {STRIPE_BYTES} bytes"):
        decode_stripe(raw[:-1])
    with pytest.raises(ValueError, match=f"exactly {STRIPE_BYTES} bytes"):
        decode_stripe(raw + b"\x00")
    with pytest.raises(ValueError, match=f"exactly {STRIPE_BYTES} bytes"):
        decode_stripe(b"")


def test_decode_stripe_rejects_unknown_version():
    # A record from a future (or corrupted) build must fail loudly rather
    # than be misassembled into the wrong group.
    from repro.madeleine import StripeRecord, decode_stripe, encode_stripe
    from repro.madeleine.wire import _STRIPE_FMT
    import struct
    raw = encode_stripe(StripeRecord(stripe_id=9, seq=0, total=2))
    _v, seq, total, sid = struct.unpack(_STRIPE_FMT, raw)
    bad = struct.pack(_STRIPE_FMT, 42, seq, total, sid)
    with pytest.raises(ValueError, match="version 42"):
        decode_stripe(bad)


def test_announce_striped_flag_roundtrip():
    a = Announce(mode=MODE_GTM, origin=2, final_dst=5, mtu=16 << 10,
                 msg_id=99, hops_left=2, striped=True)
    got = decode_announce(encode_announce(a))
    assert got == a
    assert got.striped and not got.batched
    assert got.mode == MODE_GTM
    # both flag bits together decode independently
    both = decode_announce(encode_announce(
        Announce(mode=MODE_GTM, origin=2, final_dst=5, mtu=16 << 10,
                 msg_id=99, hops_left=2, striped=True, batched=True)))
    assert both.striped and both.batched and both.mode == MODE_GTM


@given(stripe_id=st.integers(0, 2**32 - 1),
       total=st.integers(1, 0xFFFF))
def test_stripe_roundtrip_property(stripe_id, total):
    from repro.madeleine import StripeRecord, decode_stripe, encode_stripe
    for seq in {0, total - 1, total // 2}:
        s = StripeRecord(stripe_id=stripe_id, seq=seq, total=total)
        assert decode_stripe(encode_stripe(s)) == s
