"""Unit and property tests for the announce / descriptor wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.madeleine import (ANNOUNCE_BYTES, DESC_BYTES, MODE_GTM,
                             MODE_REGULAR, Announce, Descriptor,
                             decode_announce, decode_descriptor,
                             encode_announce, encode_descriptor)
from repro.madeleine.flags import RecvMode, SendMode


def test_sizes_documented():
    assert ANNOUNCE_BYTES == 12
    assert DESC_BYTES == 16


def test_announce_roundtrip_basic():
    a = Announce(mode=MODE_GTM, origin=3, final_dst=7, mtu=16 << 10,
                 msg_id=12345, hops_left=2)
    assert decode_announce(encode_announce(a)) == a


def test_announce_rejects_bad_mode():
    with pytest.raises(ValueError):
        Announce(mode=9, origin=0, final_dst=1, mtu=1024, msg_id=1)


def test_announce_rejects_unaligned_mtu():
    with pytest.raises(ValueError):
        Announce(mode=MODE_REGULAR, origin=0, final_dst=1, mtu=1500, msg_id=1)


def test_descriptor_roundtrip_basic():
    d = Descriptor(length=123456, smode=SendMode.SAFER, rmode=RecvMode.EXPRESS)
    assert decode_descriptor(encode_descriptor(d)) == d


def test_terminator():
    t = Descriptor(length=0, terminator=True)
    assert t.is_terminator
    assert decode_descriptor(encode_descriptor(t)).is_terminator
    assert not Descriptor(length=1).is_terminator
    # a genuinely empty data record is NOT a terminator
    assert not Descriptor(length=0).is_terminator
    assert not decode_descriptor(
        encode_descriptor(Descriptor(length=0))).is_terminator


def test_terminator_with_payload_rejected():
    with pytest.raises(ValueError):
        Descriptor(length=5, terminator=True)


def test_decode_ignores_trailing_bytes():
    d = Descriptor(length=10)
    raw = encode_descriptor(d) + b"garbage"
    assert decode_descriptor(raw) == d


@given(mode=st.sampled_from([MODE_REGULAR, MODE_GTM]),
       origin=st.integers(0, 65535),
       final_dst=st.integers(0, 65535),
       mtu_kb=st.integers(0, 65535),
       msg_id=st.integers(0, 2**32 - 1),
       hops=st.integers(0, 255))
def test_announce_roundtrip_property(mode, origin, final_dst, mtu_kb,
                                     msg_id, hops):
    a = Announce(mode=mode, origin=origin, final_dst=final_dst,
                 mtu=mtu_kb * 1024, msg_id=msg_id, hops_left=hops)
    assert decode_announce(encode_announce(a)) == a


@given(length=st.integers(0, 2**32 - 1),
       smode=st.sampled_from(list(SendMode)),
       rmode=st.sampled_from(list(RecvMode)),
       terminator=st.booleans())
def test_descriptor_roundtrip_property(length, smode, rmode, terminator):
    if terminator:
        length = 0
    d = Descriptor(length=length, smode=smode, rmode=rmode,
                   terminator=terminator)
    got = decode_descriptor(encode_descriptor(d))
    assert got == d
    assert got.is_terminator == terminator
