"""The unified MessageEndpoint protocol and its deprecation shims."""

import pytest

from repro.hw import build_world
from repro.madeleine import (GTMOutgoing, MessageEndpoint, OutgoingMessage,
                             Session)
from repro.madeleine.vchannel import VChannelEndpoint


def paper_vch():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=16 << 10)
    return s, vch


def test_channel_endpoint_implements_protocol():
    w = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    s = Session(w)
    ep = s.channel("myrinet", ["a", "b"]).endpoint(0)
    assert isinstance(ep, MessageEndpoint)


def test_vchannel_endpoint_implements_protocol():
    _s, vch = paper_vch()
    ep = vch.endpoint(0)
    assert isinstance(ep, VChannelEndpoint)
    assert isinstance(ep, MessageEndpoint)


def test_protocol_is_abstract():
    with pytest.raises(TypeError):
        MessageEndpoint()


def test_deprecated_two_arg_begin_packing_warns_and_delegates():
    _s, vch = paper_vch()
    with pytest.warns(DeprecationWarning, match="endpoint"):
        msg = vch.begin_packing(0, 1)
    assert isinstance(msg, OutgoingMessage)
    with pytest.warns(DeprecationWarning):
        fwd = vch.begin_packing(0, 2)
    assert isinstance(fwd, GTMOutgoing)


def test_new_surface_does_not_warn(recwarn):
    _s, vch = paper_vch()
    vch.endpoint(0).begin_packing(1)
    vch.endpoint(0).begin_packing(2)
    assert not [w for w in recwarn.list
                if issubclass(w.category, DeprecationWarning)]
