"""Pipeline disciplines (lockstep vs decoupled), depth, ingress regulation."""

import pytest

from repro.hw import GatewayParams, build_world
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def forward(packet=64 << 10, size=1_000_000, gateway_params=None,
            direction="sci->myri"):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=packet, gateway_params=gateway_params)
    src, dst = (2, 0) if direction == "sci->myri" else (0, 2)
    out = transfer_once(s, vch, src, dst, payload(size))
    return w, out


def test_lockstep_is_default():
    assert GatewayParams().lockstep


def test_lockstep_period_is_max_plus_overhead():
    """The defining property of the paper's shared-buffer pipeline."""
    from repro.analysis import extract_timeline, pipeline_stats
    w, _out = forward(gateway_params=GatewayParams(switch_overhead=40.0))
    stats = pipeline_stats(extract_timeline(w.trace))
    expected = max(stats.mean_recv_us, stats.mean_send_us) + 40.0
    assert stats.mean_period_us == pytest.approx(expected, rel=0.1)


def test_decoupled_can_hide_switch_overhead():
    """With the decoupled queue, a swap overhead smaller than the slack
    between the two steps costs nothing; in lockstep it always costs."""
    slow = GatewayParams(switch_overhead=40.0, lockstep=True)
    fast = GatewayParams(switch_overhead=40.0, lockstep=False)
    _w1, out1 = forward(gateway_params=slow)
    _w2, out2 = forward(gateway_params=fast)
    assert out2["t"] <= out1["t"]


def test_lockstep_and_decoupled_same_payload():
    data = payload(300_000)
    for lockstep in (True, False):
        w, out = forward(size=300_000,
                         gateway_params=GatewayParams(lockstep=lockstep))
        assert out["buf"].tobytes() == data.tobytes()


def test_depth_one_serializes_steps():
    """depth=1: a fragment's send completes before the next receive starts
    (store-and-forward per fragment)."""
    from repro.analysis import extract_timeline
    w, _out = forward(size=500_000,
                      gateway_params=GatewayParams(pipeline_depth=1,
                                                   lockstep=False))
    steps = [s for s in extract_timeline(w.trace) if s.kind == "frag"]
    for a, b in zip(steps, steps[1:]):
        assert b.recv_start >= a.send_end - 1e-9


def test_depth_two_overlaps_steps():
    from repro.analysis import extract_timeline
    w, _out = forward(size=500_000)
    steps = [s for s in extract_timeline(w.trace) if s.kind == "frag"]
    overlaps = sum(1 for a, b in zip(steps, steps[1:])
                   if b.recv_start < a.send_end)
    assert overlaps > len(steps) // 2


def test_ingress_limit_caps_accepted_rate():
    limit = 20.0   # MB/s
    w, out = forward(size=1_000_000,
                     gateway_params=GatewayParams(ingress_limit=limit))
    bw = 1_000_000 / out["t"]
    assert bw <= limit * 1.05
    assert out["buf"].nbytes == 1_000_000


def test_ingress_limit_above_line_rate_is_noop():
    _w1, out1 = forward(size=1_000_000)
    _w2, out2 = forward(size=1_000_000,
                        gateway_params=GatewayParams(ingress_limit=1000.0))
    assert out2["t"] == pytest.approx(out1["t"], rel=1e-6)


def test_regulated_gateway_still_zero_copy():
    w, _out = forward(size=400_000,
                      gateway_params=GatewayParams(ingress_limit=30.0))
    assert "gateway.static_copy" not in w.accounting.by_label()
