"""Unit-level tests of the Generic Transmission Module behaviour."""

import pytest

from repro.hw import build_world
from repro.madeleine import GTMOutgoing, RecvMode, SendMode, Session
from repro.madeleine.bmm import split_fragments
from tests.conftest import payload, transfer_once


def paper_vch(packet_size=16 << 10):
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=packet_size)
    return w, s, vch


# -- split_fragments -----------------------------------------------------------

def test_split_exact_multiple():
    assert split_fragments(32768, 16384) == [(0, 16384), (16384, 16384)]


def test_split_with_tail():
    assert split_fragments(20000, 16384) == [(0, 16384), (16384, 3616)]


def test_split_smaller_than_mtu():
    assert split_fragments(5, 16384) == [(0, 5)]


def test_split_empty():
    assert split_fragments(0, 16384) == []


def test_split_bad_mtu():
    with pytest.raises(ValueError):
        split_fragments(10, 0)


@pytest.mark.parametrize("length,mtu", [(1, 1), (1000, 7), (16384, 1024),
                                        (99999, 4096)])
def test_split_covers_everything(length, mtu):
    pieces = split_fragments(length, mtu)
    assert sum(size for _off, size in pieces) == length
    assert all(size <= mtu for _off, size in pieces)
    pos = 0
    for off, size in pieces:
        assert off == pos
        pos += size


# -- GTM wire behaviour ------------------------------------------------------------

def test_gtm_requires_multi_hop_route():
    _w, _s, vch = paper_vch()
    with pytest.raises(ValueError):
        GTMOutgoing(vch, 0, 1)     # direct neighbours


def test_fragments_respect_mtu_on_wire():
    w, s, vch = paper_vch(packet_size=8 << 10)
    transfer_once(s, vch, 0, 2, payload(50_000))
    frags = [r for r in w.trace.query(category="xfer", event="fragment")
             if r["kind"] == "frag"]
    assert frags
    assert all(r["nbytes"] <= 8 << 10 for r in frags)
    # 50_000 = 6*8192 + 848; sent twice (both hops)
    sizes = sorted(r["nbytes"] for r in frags)
    assert sizes.count(848) == 2
    assert sizes.count(8192) == 12


def test_descriptor_stream_structure():
    """Per §2.3: per buffer one descriptor then its fragments, then an empty
    terminating descriptor."""
    w, s, vch = paper_vch(packet_size=16 << 10)
    parts = [payload(10_000, 1), payload(20_000, 2)]
    got = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        for p in parts:
            yield m.pack(p)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        for p in parts:
            inc.unpack(len(p))
        yield inc.end_unpacking()
        got["done"] = True

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["done"]
    # first hop: announce, then desc, frag, desc, frag, frag, desc(end)
    first_hop = [r for r in w.trace.query(category="xfer", event="fragment")
                 if "!fwd" in r["tag"]]
    kinds = [r["kind"] for r in first_hop]
    assert kinds == ["announce", "desc", "frag", "desc", "frag", "frag",
                     "desc"]
    assert first_hop[-1]["nbytes"] == 16   # the empty terminator record


def test_gtm_safer_copy_counted_on_dynamic_origin():
    w, s, vch = paper_vch()
    data = payload(5_000)
    out = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)   # origin on Myrinet (dynamic)
        ev = m.pack(data, SendMode.SAFER, RecvMode.CHEAPER)
        yield ev
        data[:] = 0
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _ev, b = inc.unpack(5_000, SendMode.SAFER, RecvMode.CHEAPER)
        yield inc.end_unpacking()
        out["bytes"] = b.tobytes()

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert out["bytes"] != bytes(5000)        # original data, not zeros
    assert "gtm.safer" in w.accounting.by_label()


def test_gtm_later_deferred_to_end():
    w, s, vch = paper_vch()
    d1, d2 = payload(3_000, 1), payload(4_000, 2)
    got = {}

    def snd():
        m = vch.endpoint(0).begin_packing(2)
        yield m.pack(d1, SendMode.LATER, RecvMode.CHEAPER)
        yield m.pack(d2, SendMode.CHEAPER, RecvMode.CHEAPER)
        yield m.end_packing()

    def rcv():
        inc = yield vch.endpoint(2).begin_unpacking()
        _e1, b1 = inc.unpack(3_000, SendMode.LATER, RecvMode.CHEAPER)
        _e2, b2 = inc.unpack(4_000, SendMode.CHEAPER, RecvMode.CHEAPER)
        yield inc.end_unpacking()
        got["ok"] = (b1.tobytes() == d1.tobytes()
                     and b2.tobytes() == d2.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    assert got["ok"]
    # LATER data travels after eager data: the 4000-buffer's descriptor
    # precedes the 3000-buffer's on the wire.
    descs = [r for r in w.trace.query(category="xfer", event="fragment")
             if r["kind"] == "frag" and "!fwd" in r["tag"]]
    assert descs[0]["nbytes"] == 4_000
    assert descs[1]["nbytes"] == 3_000


def test_non_gtm_announce_on_special_channel_is_error():
    """Failure injection: a regular announce must never reach a forwarding
    worker; if it does, the worker crashes loudly."""
    w, s, vch = paper_vch()
    myri_special = vch.special_twin(vch.channels[0])

    def bad_sender():
        # Bypass the vchannel and push a REGULAR message onto the special
        # channel the gateway worker listens on.
        msg = myri_special.endpoint(0).begin_packing(1)
        yield msg.pack(payload(100))
        yield msg.end_packing()

    s.spawn(bad_sender())
    with pytest.raises(Exception) as excinfo:
        s.run()
    assert "GatewayError" in repr(excinfo.value) or "non-GTM" in str(excinfo.value) \
        or "crashed" in str(excinfo.value)


def test_gtm_mtu_encoded_in_announce():
    _w, _s, vch = paper_vch(packet_size=32 << 10)
    msg = vch.endpoint(0).begin_packing(2)
    assert msg.mtu == 32 << 10
