"""The redesigned Session surface: context manager, keyword-only config,
telemetry ownership."""

import pytest

from repro.faults import ChannelFaults, FaultPlan
from repro.hw import build_world
from repro.hw.params import GatewayParams
from repro.madeleine import ReliableEndpoint, RetryPolicy, Session
from repro.madeleine.vchannel import DEFAULT_PACKET_SIZE
from tests.conftest import payload


def two_nodes():
    return build_world({"a": ["myrinet"], "b": ["myrinet"]})


def forwarding_world():
    return build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                        "s0": ["sci"]})


def test_context_manager_closes_session():
    with Session(two_nodes()) as session:
        assert not session.closed
    assert session.closed


def test_closed_session_refuses_construction():
    w = two_nodes()
    with Session(w) as session:
        pass
    with pytest.raises(RuntimeError, match="closed"):
        session.channel("myrinet", ["a", "b"])
    with pytest.raises(RuntimeError, match="closed"):
        session.spawn(iter(()))
    w2 = forwarding_world()
    with Session(w2) as s2:
        chans = [s2.channel("myrinet", ["m0", "gw"]),
                 s2.channel("sci", ["gw", "s0"])]
    with pytest.raises(RuntimeError, match="closed"):
        s2.virtual_channel(chans)


def test_telemetry_keyword_enables_world_telemetry():
    w = two_nodes()
    assert not w.telemetry.enabled
    session = Session(w, telemetry=True)
    assert w.telemetry.enabled
    assert session.telemetry is w.telemetry
    assert session.metrics is w.telemetry.metrics
    assert session.spans is w.telemetry.spans
    assert session.trace is w.trace


def test_telemetry_none_leaves_state_and_false_disables():
    w = two_nodes()
    w.telemetry.enable()
    Session(w)                       # None: leave as-is
    assert w.telemetry.enabled
    Session(w, telemetry=False)
    assert not w.telemetry.enabled


def test_telemetry_keyword_rejects_non_bool():
    with pytest.raises(TypeError):
        Session(two_nodes(), telemetry="yes")


def test_telemetry_readable_after_close():
    w = two_nodes()
    with Session(w, telemetry=True) as session:
        ch = session.channel("myrinet", ["a", "b"])

        def sender():
            m = ch.endpoint(0).begin_packing(1)
            yield m.pack(payload(4096))
            yield m.end_packing()

        def receiver():
            inc = yield ch.endpoint(1).begin_unpacking()
            inc.unpack(4096)
            yield inc.end_unpacking()

        session.spawn(sender())
        session.spawn(receiver())
        session.run()
    assert session.metrics.total("wire.bytes") >= 4096
    assert len(session.trace) > 0


def test_packet_size_default_flows_to_virtual_channel():
    with Session(forwarding_world(), packet_size=8 << 10) as session:
        chans = [session.channel("myrinet", ["m0", "gw"]),
                 session.channel("sci", ["gw", "s0"])]
        vch = session.virtual_channel(chans)
        assert vch.packet_size == 8 << 10
        override = session.virtual_channel(chans, packet_size=32 << 10)
        assert override.packet_size == 32 << 10


def test_default_packet_size_without_keyword():
    session = Session(two_nodes())
    assert session.default_packet_size == DEFAULT_PACKET_SIZE


def test_fault_plan_keyword_arms_the_world():
    w = forwarding_world()
    plan = FaultPlan(seed=5, default=ChannelFaults(drop_p=0.05))
    with Session(w, fault_plan=plan, telemetry=True) as session:
        assert w.fabric.injector is not None
        chans = [session.channel("myrinet", ["m0", "gw"]),
                 session.channel("sci", ["gw", "s0"])]
        vch = session.virtual_channel(
            chans, packet_size=16 << 10,
            gateway_params=GatewayParams(stall_timeout=5_000.0))
        rel_src = ReliableEndpoint(vch.endpoint(0), RetryPolicy())
        rel_dst = ReliableEndpoint(vch.endpoint(2), RetryPolicy())
        data = payload(100_000).tobytes()
        got = {}

        def sender():
            yield from rel_src.send(2, data)

        def receiver():
            _src, blob, _tid = yield from rel_dst.recv()
            got["data"] = blob

        session.spawn(sender())
        session.spawn(receiver())
        session.run()
    assert got["data"] == data
    # the armed plan actually dropped fragments, and telemetry saw them
    assert session.metrics.total("faults.fragments_dropped") == \
        w.fabric.injector.dropped
    assert w.fabric.injector.dropped > 0
