"""Multi-rail routing over parallel gateways (high-level routing built on
the forwarding mechanism, as §1/§4 envisage)."""


from repro.hw import build_world
from repro.madeleine import Session
from tests.conftest import payload


def dual_gateway_world(multirail):
    """Two Myrinet/SCI gateways between the same pair of clusters."""
    w = build_world({
        "m0": ["myrinet"],
        "gwA": ["myrinet", "sci"],
        "gwB": ["myrinet", "sci"],
        "s0": ["sci"],
    })
    s = Session(w)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    vch = s.virtual_channel([myri, sci], packet_size=16 << 10,
                            multirail=multirail)
    return w, s, vch


def test_all_routes_finds_both_rails():
    w, s, vch = dual_gateway_world(multirail=False)
    rails = vch.routes.all_routes(0, 3)
    assert len(rails) == 2
    vias = sorted(r[0].dst for r in rails)
    assert vias == [1, 2]     # gwA and gwB
    # deterministic order
    assert [r[0].dst for r in vch.routes.all_routes(0, 3)] == \
        [r[0].dst for r in rails]


def test_single_rail_uses_one_gateway():
    w, s, vch = dual_gateway_world(multirail=False)
    got = []

    def snd():
        for i in range(4):
            m = vch.endpoint(0).begin_packing(3)
            m.pack(payload(20_000, i))
            yield m.end_packing()

    def rcv():
        for _ in range(4):
            inc = yield vch.endpoint(3).begin_unpacking()
            _ev, b = inc.unpack(20_000)
            yield inc.end_unpacking()
            got.append(b.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    fwd = {w.nodes[wk.gw_rank].name: wk.messages_forwarded
           for wk in vch.workers if wk.messages_forwarded}
    assert sum(fwd.values()) == 4
    assert len(fwd) == 1              # all through the same gateway


def test_multirail_spreads_across_gateways():
    w, s, vch = dual_gateway_world(multirail=True)
    datas = [payload(20_000, i) for i in range(4)]
    got = []

    def snd():
        for d in datas:
            m = vch.endpoint(0).begin_packing(3)
            m.pack(d)
            yield m.end_packing()

    def rcv():
        for _ in datas:
            inc = yield vch.endpoint(3).begin_unpacking()
            _ev, b = inc.unpack(20_000)
            yield inc.end_unpacking()
            got.append(b.tobytes())

    s.spawn(snd()); s.spawn(rcv()); s.run()
    # every payload arrived (order across rails may differ)
    assert sorted(got) == sorted(d.tobytes() for d in datas)
    per_gw = {w.nodes[wk.gw_rank].name: wk.messages_forwarded
              for wk in vch.workers if wk.messages_forwarded}
    assert per_gw == {"gwA": 2, "gwB": 2}


def test_multirail_parallel_messages_faster():
    """Messages to two distinct receivers spread over the two rails and
    finish sooner than when both squeeze through one gateway.

    (A single receiving process would serialize at unpack time regardless —
    Madeleine receives one message at a time — so the win shows up with
    distinct receivers.)"""
    def run(multirail):
        w = build_world({
            "m0": ["myrinet"],
            "gwA": ["myrinet", "sci"],
            "gwB": ["myrinet", "sci"],
            "s0": ["sci"], "s1": ["sci"],
        })
        s = Session(w)
        myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
        sci = s.channel("sci", ["gwA", "gwB", "s0", "s1"])
        vch = s.virtual_channel([myri, sci], packet_size=16 << 10,
                                multirail=multirail)
        done = {}

        def snd(dst, seed):
            def proc():
                m = vch.endpoint(0).begin_packing(dst)
                m.pack(payload(500_000, seed))
                yield m.end_packing()
            return proc

        def rcv(dst):
            def proc():
                inc = yield vch.endpoint(dst).begin_unpacking()
                _ev, _b = inc.unpack(500_000)
                yield inc.end_unpacking()
                done[dst] = s.now
            return proc

        for dst, seed in ((s.rank("s0"), 1), (s.rank("s1"), 2)):
            s.spawn(snd(dst, seed)())
            s.spawn(rcv(dst)())
        s.run()
        return max(done.values()), {
            w.nodes[wk.gw_rank].name: wk.messages_forwarded
            for wk in vch.workers if wk.messages_forwarded}

    t_single, fwd_single = run(False)
    t_multi, fwd_multi = run(True)
    assert len(fwd_single) == 1          # everything through one gateway
    assert len(fwd_multi) == 2           # one message per gateway
    assert t_multi < t_single * 0.8


def test_multirail_noop_when_single_route():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], multirail=True)
    from tests.conftest import transfer_once
    data = payload(50_000)
    out = transfer_once(s, vch, 0, 2, data)
    assert out["buf"].tobytes() == data.tobytes()
