"""SpanTracker: begin/end, nesting, and trace mirroring."""

import pytest

from repro.sim.trace import TraceRecorder
from repro.telemetry import SpanTracker


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracker(clock):
    return SpanTracker(clock=clock)


def test_begin_end_records_interval(tracker, clock):
    sp = tracker.begin("gateway", "forward", gw=1)
    clock.now = 250.0
    tracker.end(sp, ok=True)
    assert not sp.open
    assert sp.duration == 250.0
    assert sp.attrs == {"gw": 1, "ok": True}
    assert tracker.completed == [sp]


def test_finish_is_end(tracker, clock):
    sp = tracker.begin("x", "y")
    clock.now = 10.0
    assert sp.finish(n=3) is sp
    assert sp.stop == 10.0 and sp.attrs["n"] == 3


def test_double_end_raises(tracker):
    sp = tracker.begin("x", "y")
    tracker.end(sp)
    with pytest.raises(ValueError):
        tracker.end(sp)


def test_duration_of_open_span_raises(tracker):
    sp = tracker.begin("x", "y")
    with pytest.raises(ValueError):
        _ = sp.duration


def test_context_manager_nests_automatically(tracker, clock):
    with tracker.span("a", "outer") as outer:
        clock.now = 5.0
        with tracker.span("a", "inner") as inner:
            clock.now = 8.0
    assert inner.parent == outer.id
    assert outer.parent is None
    assert (inner.depth, outer.depth) == (1, 0)
    assert tracker.children(outer) == [inner]
    # inner closes first: completed is ordered by end time
    assert tracker.completed == [inner, outer]


def test_explicit_parent_for_process_style_spans(tracker):
    root = tracker.begin("gw", "forward")
    child = tracker.begin("gw", "swap", parent=root)
    tracker.end(child)
    tracker.end(root)
    assert child.parent == root.id
    assert tracker.get(child.id) is child


def test_query_filters_by_category_and_name(tracker):
    tracker.end(tracker.begin("a", "one"))
    tracker.end(tracker.begin("b", "one"))
    tracker.end(tracker.begin("b", "two"))
    assert len(tracker.query(category="b")) == 2
    assert len(tracker.query(name="one")) == 2
    assert len(tracker.query(category="b", name="two")) == 1
    assert len(tracker) == 3


def test_spans_mirror_into_trace_stream(clock):
    trace = TraceRecorder()
    tracker = SpanTracker(clock=clock, trace=trace)
    sp = tracker.begin("gateway", "forward", gw=2)
    clock.now = 100.0
    tracker.end(sp, ok=True)
    begin = trace.query("gateway", "forward_begin")
    end = trace.query("gateway", "forward_end")
    assert len(begin) == 1 and len(end) == 1
    assert begin[0].t == 0.0 and begin[0]["span"] == sp.id
    assert end[0].t == 100.0 and end[0]["ok"] is True


def test_reset_clears_completed(tracker):
    tracker.end(tracker.begin("a", "b"))
    tracker.reset()
    assert len(tracker) == 0
    assert tracker.query() == []
