"""Disabled telemetry is a no-op: nothing recorded, nothing emitted."""

import pytest

from repro.hw import build_world
from repro.sim.trace import TraceRecorder
from repro.telemetry import (NULL_TELEMETRY, MetricsRegistry, NullRegistry,
                             SpanTracker, Telemetry)


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("n")
    g = registry.gauge("d")
    h = registry.histogram("lat")
    c.inc(5)
    g.set(9)
    h.observe(1.0)
    assert (c.value, g.value, g.hwm, h.count) == (0, 0, 0, 0)
    assert registry.snapshot() == {}


def test_disabled_tracker_hands_out_null_spans():
    trace = TraceRecorder()
    tracker = SpanTracker(trace=trace, enabled=False)
    sp = tracker.begin("a", "b")
    sp.finish(ok=True)
    tracker.end(sp)          # ending the null span twice is still a no-op
    with tracker.span("a", "c"):
        pass
    assert len(tracker) == 0
    assert len(trace) == 0   # nothing mirrored into the trace stream


def test_late_enable_records_through_existing_handles():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("n")      # created while disabled, like a NIC's
    c.inc()                        # ignored
    registry.enable()
    c.inc(2)
    assert registry.value("n") == 2


def test_null_registry_cannot_be_enabled():
    with pytest.raises(RuntimeError):
        NullRegistry().enable()


def test_null_telemetry_cannot_be_enabled():
    with pytest.raises(RuntimeError):
        NULL_TELEMETRY.enable()
    assert not NULL_TELEMETRY.enabled


def test_telemetry_facade_toggles_both_halves():
    t = Telemetry(enabled=False)
    assert not t.enabled
    t.enable()
    assert t.metrics.enabled and t.spans.enabled
    t.disable()
    assert not t.metrics.enabled and not t.spans.enabled


def test_world_telemetry_off_by_default_and_silent():
    """An undisturbed world records no metrics — the zero-overhead default."""
    world = build_world({"a": ["myrinet"], "b": ["myrinet"]})
    assert not world.telemetry.enabled
    assert world.telemetry.metrics.snapshot() == {}
    # instruments exist (live handles), but none has recorded anything
    assert len(world.telemetry.metrics) > 0
    assert all(i.value == 0 for i in
               world.telemetry.metrics.series("wire.fragments"))
