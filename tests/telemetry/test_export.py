"""Exporters: metrics JSON/CSV and the span Chrome-trace format."""

import csv
import json

from repro.analysis import (metrics_to_rows, spans_to_chrome,
                            write_metrics_csv, write_metrics_json,
                            write_spans_chrome)
from repro.telemetry import MetricsRegistry, SpanTracker


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def small_registry() -> MetricsRegistry:
    registry = MetricsRegistry(clock=FakeClock())
    registry.counter("wire.bytes", nic=0).inc(4096)
    registry.gauge("gateway.occupancy", gw=1).set(2)
    return registry


def test_metrics_json_golden(tmp_path):
    path = tmp_path / "metrics.json"
    assert write_metrics_json(small_registry(), path) == 2
    assert json.loads(path.read_text()) == {
        "gateway.occupancy": {
            "kind": "gauge",
            "series": [{"labels": {"gw": 1}, "value": 2, "hwm": 2}],
        },
        "wire.bytes": {
            "kind": "counter",
            "series": [{"labels": {"nic": 0}, "value": 4096}],
        },
    }


def test_metrics_rows_flatten_histograms():
    registry = MetricsRegistry(clock=FakeClock())
    registry.histogram("lat", bounds=(10.0, 100.0)).observe(5.0)
    rows = metrics_to_rows(registry)
    fields = {row[3]: row[4] for row in rows}
    assert fields["count"] == 1
    assert fields["sum"] == 5.0
    assert fields["buckets.le_10"] == 1       # sub-dicts become field.sub
    assert all(row[:3] == ["lat", "histogram", ""] for row in rows)


def test_metrics_csv_golden(tmp_path):
    path = tmp_path / "metrics.csv"
    assert write_metrics_csv(small_registry(), path) == 3
    with path.open(newline="") as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["metric", "kind", "labels", "field", "value"]
    assert rows[1] == ["gateway.occupancy", "gauge", "gw=1", "value", "2"]
    assert rows[2] == ["gateway.occupancy", "gauge", "gw=1", "hwm", "2"]
    assert rows[3] == ["wire.bytes", "counter", "nic=0", "value", "4096"]


def test_spans_to_chrome_events():
    clock = FakeClock()
    tracker = SpanTracker(clock=clock)
    root = tracker.begin("gateway", "forward", gw=1)
    clock.now = 300.0
    tracker.end(root, ok=True)
    (event,) = spans_to_chrome(tracker)
    assert event["ph"] == "X"
    assert event["name"] == "forward" and event["cat"] == "gateway"
    assert (event["ts"], event["dur"]) == (0.0, 300.0)
    assert event["pid"] == "span:gateway"
    assert event["args"] == {"span": root.id, "parent": None,
                             "gw": 1, "ok": True}


def test_spans_chrome_file_roundtrip(tmp_path):
    clock = FakeClock()
    tracker = SpanTracker(clock=clock)
    tracker.end(tracker.begin("a", "one"))
    clock.now = 2.0
    tracker.end(tracker.begin("a", "two"))
    path = tmp_path / "spans.json"
    assert write_spans_chrome(tracker, path) == 2
    payload = json.loads(path.read_text())
    assert [e["name"] for e in payload["traceEvents"]] == ["one", "two"]
    # zero-duration spans are widened so Perfetto renders them
    assert all(e["dur"] >= 0.01 for e in payload["traceEvents"])


def test_disabled_registry_exports_empty(tmp_path):
    registry = MetricsRegistry(enabled=False)
    registry.counter("n").inc()
    assert write_metrics_json(registry, tmp_path / "m.json") == 0
    assert write_metrics_csv(registry, tmp_path / "m.csv") == 0
