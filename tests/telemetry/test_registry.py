"""MetricsRegistry semantics: instruments, label sets, snapshots."""

import pytest

from repro.telemetry import MetricsRegistry, format_metrics


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def registry():
    return MetricsRegistry(clock=FakeClock(), enabled=True)


def test_counter_increments(registry):
    c = registry.counter("xfers")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert registry.value("xfers") == 5


def test_counter_rejects_negative(registry):
    c = registry.counter("xfers")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_high_water_mark(registry):
    g = registry.gauge("depth")
    g.set(3)
    g.inc(2)
    g.dec(4)
    assert g.value == 1
    assert g.hwm == 5


def test_histogram_lifetime_stats(registry):
    h = registry.histogram("lat", bounds=(10.0, 100.0))
    for v in (5.0, 50.0, 500.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 555.0
    assert h.mean == 185.0
    assert (h.min, h.max) == (5.0, 500.0)
    # the last bound doubles as the overflow bucket: [<=10, rest]
    assert h.buckets == [1, 2]
    assert h.data()["buckets"] == {"le_10": 1, "le_inf": 2}


def test_histogram_window_resets_on_boundary():
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    h = registry.histogram("lat", window=1_000.0)
    clock.now = 100.0
    h.observe(7.0)
    clock.now = 900.0
    h.observe(9.0)
    assert (h.window_count, h.window_total) == (2, 16.0)
    clock.now = 1_100.0              # next window: rolling stats reset
    h.observe(1.0)
    assert (h.window_count, h.window_total) == (1, 1.0)
    assert h.count == 3              # lifetime aggregate keeps accumulating


def test_get_or_create_is_keyed_by_name_and_labels(registry):
    a = registry.counter("retries", rank=0)
    b = registry.counter("retries", rank=0)
    c = registry.counter("retries", rank=1)
    assert a is b
    assert a is not c
    assert len(registry) == 2


def test_kind_conflict_raises(registry):
    registry.counter("thing")
    with pytest.raises(ValueError):
        registry.gauge("thing")


def test_value_of_missing_series_is_zero(registry):
    assert registry.value("nope", rank=9) == 0


def test_total_sums_across_label_sets(registry):
    registry.counter("bytes", nic=0).inc(10)
    registry.counter("bytes", nic=1).inc(32)
    assert registry.total("bytes") == 42


def test_series_lists_every_label_set(registry):
    registry.gauge("occ", gw=1).set(2)
    registry.gauge("occ", gw=2).set(5)
    assert sorted(s.labels["gw"] for s in registry.series("occ")) == [1, 2]


def test_snapshot_shape_and_determinism(registry):
    registry.counter("b.count", rank=1).inc(3)
    registry.gauge("a.depth").set(2)
    snap = registry.snapshot()
    assert list(snap) == ["a.depth", "b.count"]     # sorted by name
    assert snap["b.count"]["kind"] == "counter"
    assert snap["b.count"]["series"] == [{"labels": {"rank": 1}, "value": 3}]
    assert snap["a.depth"]["series"][0]["hwm"] == 2
    assert snap == registry.snapshot()              # stable across calls


def test_reset_zeroes_but_handles_stay_live(registry):
    c = registry.counter("n")
    c.inc(7)
    registry.reset()
    assert c.value == 0
    c.inc()
    assert registry.value("n") == 1


def test_format_metrics_renders_table(registry):
    registry.counter("wire.bytes", nic=0).inc(128)
    registry.gauge("pool.in_use", pool="p").set(3)
    registry.histogram("swap_us").observe(12.5)
    text = format_metrics(registry.snapshot())
    assert "wire.bytes" in text
    assert "nic=0" in text and "128" in text
    assert "3 (hwm 3)" in text
    assert "n=1 mean=12.5" in text


def test_format_metrics_empty():
    assert format_metrics({}) == "(no metrics recorded)"
