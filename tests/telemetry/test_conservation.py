"""Conservation laws: the accounting identities behind invariant I6."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.conservation import (FRAGMENT_LAW, STANDARD_LAWS,
                                          STRIPE_LAW, ConservationLaw,
                                          check_laws)


def _registry(**totals):
    m = MetricsRegistry()
    for name, value in totals.items():
        m.counter(name.replace("__", ".")).inc(value)
    return m


def test_fragment_law_holds_when_balanced():
    m = _registry(wire__fragments_offered=10, wire__fragments=7,
                  faults__fragments_dropped=2, wire__fragments_blackholed=1,
                  wire__fragments_failed=0)
    assert FRAGMENT_LAW.evaluate(m, {"pending_sends": 0}) is None


def test_fragment_law_counts_pending_residual():
    m = _registry(wire__fragments_offered=5, wire__fragments=3)
    assert FRAGMENT_LAW.evaluate(m, {"pending_sends": 2}) is None
    v = FRAGMENT_LAW.evaluate(m, {"pending_sends": 0})
    assert v is not None
    assert v.lhs == 5 and v.rhs == 3
    assert "wire.fragments_offered=5" in str(v)
    assert "pending_sends=0" in str(v)


def test_fragment_law_aggregates_label_sets():
    m = MetricsRegistry()
    m.counter("wire.fragments_offered", nic="a").inc(4)
    m.counter("wire.fragments_offered", nic="b").inc(6)
    m.counter("wire.fragments", nic="a").inc(4)
    m.counter("wire.fragments", nic="b").inc(6)
    assert FRAGMENT_LAW.evaluate(m, {"pending_sends": 0}) is None


def test_stripe_law():
    m = _registry(vchannel__stripes_sent=6, vchannel__stripes_reassembled=4)
    assert STRIPE_LAW.evaluate(m, {"stripes_abandoned": 2}) is None
    assert STRIPE_LAW.evaluate(m, {"stripes_abandoned": 1}) is not None


def test_missing_extra_term_raises():
    with pytest.raises(KeyError, match="pending_sends"):
        FRAGMENT_LAW.evaluate(MetricsRegistry(), {})


def test_check_laws_collects_all_violations():
    m = _registry(wire__fragments_offered=1, vchannel__stripes_sent=1)
    out = check_laws(m, {"pending_sends": 0, "stripes_abandoned": 0})
    assert {v.law.name for v in out} == {law.name for law in STANDARD_LAWS}
    assert check_laws(MetricsRegistry(),
                      {"pending_sends": 0, "stripes_abandoned": 0}) == []


def test_custom_law():
    law = ConservationLaw(name="toy", lhs=("a",), rhs=("b", "c"))
    m = _registry(a=3, b=1, c=2)
    assert law.evaluate(m) is None
    m2 = _registry(a=3, b=1)
    v = law.evaluate(m2)
    assert v is not None and "toy" in str(v)
