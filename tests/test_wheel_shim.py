"""Tests for the offline ``wheel`` shim (tools/wheel_shim).

The shim is what makes ``pip install -e .`` work without network access;
these tests exercise its core pieces directly from the repo copy so they
hold regardless of which ``wheel`` distribution is installed.
"""

import base64
import hashlib
import importlib.util
import pathlib
import sys
import zipfile

import pytest

TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools" / "wheel_shim"


def _load_shim_package():
    """Load the shim from the repo copy under a private package name (so
    the test is independent of whatever `wheel` is installed)."""
    import types
    pkg = types.ModuleType("shimwheel")
    pkg.__path__ = [str(TOOLS / "wheel")]
    sys.modules["shimwheel"] = pkg
    mods = {}
    for sub in ("wheelfile", "bdist_wheel"):
        spec = importlib.util.spec_from_file_location(
            f"shimwheel.{sub}", TOOLS / "wheel" / f"{sub}.py")
        mod = importlib.util.module_from_spec(spec)
        sys.modules[f"shimwheel.{sub}"] = mod
        spec.loader.exec_module(mod)
        mods[sub] = mod
    return mods


_SHIM = _load_shim_package()
wheelfile = _SHIM["wheelfile"]
bdist = _SHIM["bdist_wheel"]


def test_wheelfile_writes_record(tmp_path):
    path = tmp_path / "demo-1.0-py3-none-any.whl"
    with wheelfile.WheelFile(path, "w") as wf:
        wf.writestr("demo/__init__.py", b"print('hi')\n")
        wf.writestr("demo-1.0.dist-info/METADATA",
                    "Metadata-Version: 2.1\nName: demo\nVersion: 1.0\n")
    with zipfile.ZipFile(path) as zf:
        names = zf.namelist()
        assert "demo-1.0.dist-info/RECORD" in names
        record = zf.read("demo-1.0.dist-info/RECORD").decode()
        # every non-RECORD entry is listed with a sha256 hash
        assert "demo/__init__.py,sha256=" in record
        assert record.strip().endswith("demo-1.0.dist-info/RECORD,,")


def test_wheelfile_hashes_are_correct(tmp_path):
    path = tmp_path / "demo-1.0-py3-none-any.whl"
    body = b"some module body"
    with wheelfile.WheelFile(path, "w") as wf:
        wf.writestr("m.py", body)
    digest = base64.urlsafe_b64encode(
        hashlib.sha256(body).digest()).rstrip(b"=").decode()
    with zipfile.ZipFile(path) as zf:
        record = zf.read("demo-1.0.dist-info/RECORD").decode()
    assert f"m.py,sha256={digest},{len(body)}" in record


def test_wheelfile_write_files_walks_tree(tmp_path):
    src = tmp_path / "tree"
    (src / "pkg").mkdir(parents=True)
    (src / "pkg" / "__init__.py").write_text("x = 1\n")
    (src / "pkg" / "data.txt").write_text("hello")
    path = tmp_path / "demo-2.0-py3-none-any.whl"
    with wheelfile.WheelFile(path, "w") as wf:
        wf.write_files(src)
    with zipfile.ZipFile(path) as zf:
        assert set(zf.namelist()) == {"pkg/__init__.py", "pkg/data.txt",
                                      "demo-2.0.dist-info/RECORD"}


def test_wheelfile_rejects_bad_name(tmp_path):
    with pytest.raises(ValueError):
        wheelfile.WheelFile(tmp_path / "not-a-wheel.zip", "w")


def test_convert_requires_sections():
    out = bdist._convert_requires(
        "numpy>=1.24\nnetworkx\n\n[test]\npytest\nhypothesis\n")
    assert "Requires-Dist: numpy>=1.24" in out
    assert "Provides-Extra: test" in out
    assert 'Requires-Dist: pytest ; extra == "test"' in out


def test_convert_requires_markers():
    out = bdist._convert_requires('[:python_version < "3.11"]\ntomli\n')
    assert any("tomli" in line and "python_version" in line for line in out)


def test_installed_wheel_module_importable():
    """In the offline environment the shim is the installed `wheel`.

    When no ``wheel`` distribution is installed at all, the repo's shim
    copy must still be importable from ``tools/wheel_shim`` — that is what
    ``pip install -e .`` falls back to.
    """
    try:
        import wheel  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(TOOLS))
        try:
            import wheel  # noqa: F401
        finally:
            sys.path.remove(str(TOOLS))
    from wheel.wheelfile import WheelFile  # noqa: F401
    assert hasattr(WheelFile, "write_files") or True
