"""Bus occupancy monitoring."""

import pytest

from repro.analysis import BusMonitor
from repro.hw import build_world
from repro.madeleine import Session
from repro.sim import DMA, FluidNetwork, FluidResource, Simulator
from tests.conftest import payload, transfer_once


def test_single_flow_mean_utilization():
    sim = Simulator()
    fnet = FluidNetwork(sim)
    mon = BusMonitor(fnet)
    r = FluidResource("r", 100.0)
    done = fnet.transfer("f", 500.0, [(r, DMA)], peak=50.0)
    sim.run(until=done)
    sim.run(until=20.0)   # 10µs busy at 50, 10µs idle
    assert mon.mean_utilization(r) == pytest.approx(25.0)
    assert mon.busy_fraction(r) == pytest.approx(0.5)


def test_empty_resource():
    sim = Simulator()
    fnet = FluidNetwork(sim)
    mon = BusMonitor(fnet)
    r = FluidResource("r", 100.0)
    assert mon.mean_utilization(r, 0, 10) == 0.0
    assert mon.timeline(r) == []


def test_bad_window_rejected():
    sim = Simulator()
    fnet = FluidNetwork(sim)
    mon = BusMonitor(fnet)
    r = FluidResource("r", 100.0)
    fnet.transfer("f", 10.0, [(r, DMA)], peak=50.0)
    with pytest.raises(ValueError):
        mon.mean_utilization(r, 5, 5)


def test_gateway_pci_busier_than_endpoints():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    mon = BusMonitor(w.fnet)
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=64 << 10)
    transfer_once(s, vch, 2, 0, payload(2_000_000))
    gw_u = mon.mean_utilization(w.node("gw").pci)
    m0_u = mon.mean_utilization(w.node("m0").pci)
    s0_u = mon.mean_utilization(w.node("s0").pci)
    # every byte crosses the gateway bus twice
    assert gw_u > 1.5 * max(m0_u, s0_u)


def test_sparkline_renders():
    sim = Simulator()
    fnet = FluidNetwork(sim)
    mon = BusMonitor(fnet)
    r = FluidResource("r", 100.0)
    done = fnet.transfer("f", 1000.0, [(r, DMA)], peak=100.0)
    sim.run(until=done)
    sim.run(until=20.0)
    line = mon.sparkline(r, width=20)
    assert len(line) == 20
    assert line[0] != " " and line[-1] == " "
