"""Chrome trace export and session statistics."""

import json

from repro.analysis import (collect_stats, format_stats, to_chrome_trace,
                            write_chrome_trace)
from repro.hw import build_world
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def run_forwarding():
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=16 << 10)
    transfer_once(s, vch, 2, 0, payload(100_000))
    return w


def test_chrome_trace_structure():
    w = run_forwarding()
    events = to_chrome_trace(w.trace)
    assert events
    kinds = {e["ph"] for e in events}
    assert "X" in kinds and "i" in kinds
    x = [e for e in events if e["ph"] == "X"]
    assert all(e["dur"] > 0 for e in x)
    assert any(e["cat"] == "gateway" for e in x)
    assert any(e["cat"] == "wire" for e in x)


def test_write_chrome_trace(tmp_path):
    w = run_forwarding()
    path = tmp_path / "trace.json"
    n = write_chrome_trace(w.trace, path)
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n > 0


def test_collect_stats_counts():
    w = run_forwarding()
    stats = collect_stats(w)
    assert stats.elapsed_us > 0
    assert stats.fragments > 0
    # payload crossed both networks once each (plus control records)
    assert stats.by_protocol["sci"][1] >= 100_000
    assert stats.by_protocol["myrinet"][1] >= 100_000
    assert stats.gateway_messages == {1: 1}
    assert stats.aggregate_bandwidth > 0


def test_format_stats_readable():
    w = run_forwarding()
    text = format_stats(collect_stats(w))
    assert "wire fragments" in text
    assert "gateway forwarding" in text
    assert "sci" in text and "myrinet" in text


def test_empty_world_stats():
    w = build_world({"a": ["myrinet"]})
    stats = collect_stats(w)
    assert stats.fragments == 0
    assert stats.aggregate_bandwidth == 0.0
    assert "host copies" in format_stats(stats)
