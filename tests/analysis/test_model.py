"""The closed-form §3.3.1 pipeline model vs the full simulation."""

import pytest

from repro.analysis import fragment_time, predict_forwarding
from repro.bench import PingHarness
from repro.hw import GatewayParams, MYRINET, SBP, SCI


def test_fragment_time_components():
    t = fragment_time(MYRINET, 8192)
    assert t == pytest.approx(MYRINET.tx_overhead + MYRINET.latency
                              + (8192 + 16) / MYRINET.host_peak)


def test_fragment_time_rate_override():
    assert fragment_time(MYRINET, 8192, rate=33.0) > fragment_time(MYRINET, 8192)


@pytest.mark.parametrize("packet", [8 << 10, 32 << 10, 128 << 10])
def test_model_matches_simulation_sci_to_myri(packet):
    pred = predict_forwarding(SCI, MYRINET, packet)
    harness = PingHarness(packet_size=packet)
    measured = harness.measure(8 << 20, direction="b0->a0").bandwidth
    assert measured == pytest.approx(pred.bandwidth, rel=0.10)


@pytest.mark.parametrize("packet", [8 << 10, 32 << 10, 128 << 10])
def test_model_matches_simulation_myri_to_sci(packet):
    pred = predict_forwarding(MYRINET, SCI, packet)
    harness = PingHarness(packet_size=packet)
    measured = harness.measure(8 << 20, direction="a0->b0").bandwidth
    assert measured == pytest.approx(pred.bandwidth, rel=0.12)


def test_model_reproduces_direction_asymmetry():
    sm = predict_forwarding(SCI, MYRINET, 128 << 10)
    ms = predict_forwarding(MYRINET, SCI, 128 << 10)
    assert sm.bandwidth > 1.25 * ms.bandwidth
    # the asymmetry comes from the stretched send step specifically
    assert ms.send_us > ms.recv_us
    assert abs(sm.send_us - sm.recv_us) / sm.recv_us < 0.25


def test_model_overhead_term():
    fast = predict_forwarding(SCI, MYRINET, 64 << 10,
                              gateway=GatewayParams(switch_overhead=0.0))
    slow = predict_forwarding(SCI, MYRINET, 64 << 10,
                              gateway=GatewayParams(switch_overhead=160.0))
    assert slow.period_us - fast.period_us == pytest.approx(160.0)


def test_model_handles_non_pio_pairs():
    pred = predict_forwarding(SBP, SCI, 16 << 10)
    assert pred.bandwidth > 0


# -- pipeline disciplines in the closed form ---------------------------------

def test_lockstep_period_formula():
    from repro.hw import PipelineConfig
    pred = predict_forwarding(SCI, MYRINET, 64 << 10,
                              pipeline=PipelineConfig(depth=2))
    assert pred.period_us == pytest.approx(
        max(pred.recv_us, pred.send_us) + GatewayParams().switch_overhead)


def test_credit_period_moves_overhead_off_critical_path():
    from repro.hw import PipelineConfig
    c = GatewayParams().switch_overhead
    pred = predict_forwarding(SCI, MYRINET, 64 << 10,
                              pipeline=PipelineConfig(depth=4))
    assert pred.period_us == pytest.approx(
        max(pred.recv_us + c, pred.send_us))


def test_single_credit_is_store_and_forward():
    from repro.hw import PipelineConfig
    c = GatewayParams().switch_overhead
    for pipe in (PipelineConfig(depth=1),
                 PipelineConfig(depth=4, credits=1)):
        pred = predict_forwarding(SCI, MYRINET, 64 << 10, pipeline=pipe)
        assert pred.period_us == pytest.approx(
            pred.recv_us + c + pred.send_us)


def test_discipline_ordering():
    """serial >= lockstep >= credit, at every fragment size."""
    from repro.hw import PipelineConfig
    for packet in (8 << 10, 32 << 10, 128 << 10):
        serial = predict_forwarding(SCI, MYRINET, packet,
                                    pipeline=PipelineConfig(depth=1))
        lock = predict_forwarding(SCI, MYRINET, packet,
                                  pipeline=PipelineConfig(depth=2))
        credit = predict_forwarding(SCI, MYRINET, packet,
                                    pipeline=PipelineConfig(depth=4))
        assert serial.period_us >= lock.period_us >= credit.period_us


def test_legacy_params_select_the_same_periods():
    from repro.hw import PipelineConfig
    legacy = predict_forwarding(SCI, MYRINET, 64 << 10,
                                gateway=GatewayParams(pipeline_depth=4,
                                                      lockstep=False))
    explicit = predict_forwarding(SCI, MYRINET, 64 << 10,
                                  pipeline=PipelineConfig(depth=4))
    assert legacy.period_us == explicit.period_us


def test_credit_model_matches_simulation():
    """The max(recv + c, send) formula tracks the simulated credit
    pipeline the way the lockstep formula tracks the paper's."""
    from repro.hw import PipelineConfig
    pipe = PipelineConfig(depth=4)
    pred = predict_forwarding(SCI, MYRINET, 32 << 10, pipeline=pipe)
    harness = PingHarness(packet_size=32 << 10, pipeline=pipe)
    measured = harness.measure(8 << 20, direction="b0->a0").bandwidth
    assert measured == pytest.approx(pred.bandwidth, rel=0.10)


# -- multirail aggregate bandwidth --------------------------------------------

def test_multirail_validation_and_degenerate_case():
    from repro.analysis import predict_multirail
    with pytest.raises(ValueError, match="rails"):
        predict_multirail(MYRINET, SCI, 8 << 10, rails=0)
    one = predict_multirail(MYRINET, SCI, 8 << 10, rails=1)
    single = predict_forwarding(MYRINET, SCI, 8 << 10)
    # one rail is exactly the single-gateway pipeline, speedup 1
    assert one.aggregate == pytest.approx(single.bandwidth)
    assert one.speedup == pytest.approx(1.0)


def test_multirail_aggregate_bends_below_linear():
    from repro.analysis import predict_multirail
    two = predict_multirail(MYRINET, SCI, 8 << 10, rails=2)
    three = predict_multirail(MYRINET, SCI, 8 << 10, rails=3)
    assert 1.0 < two.speedup <= 2.0
    assert two.speedup < three.speedup < 3.0
    # diminishing returns: the end-host PCI fair share stretches each rail
    assert three.speedup / three.rails < two.speedup / two.rails


@pytest.mark.parametrize("rails", [1, 2, 3])
def test_multirail_model_matches_simulation(rails):
    from repro.analysis import predict_multirail
    from repro.bench import MultirailHarness
    from repro.routing import StripePolicy
    packet = 8 << 10
    message = 2 << 20
    pred = predict_multirail(MYRINET, SCI, packet, rails=rails,
                             message=message)
    policy = StripePolicy(max_rails=rails) if rails > 1 else None
    harness = MultirailHarness(packet_size=packet, rails=rails,
                               stripe_policy=policy)
    measured = harness.measure(message).bandwidth
    assert measured == pytest.approx(pred.bandwidth, rel=0.05)


def test_multirail_acceptance_gain():
    """Headline: dual-gateway striped bandwidth >= 1.7x single-rail at
    8 KB paquets."""
    from repro.bench import MultirailHarness
    from repro.routing import StripePolicy
    single = MultirailHarness(packet_size=8 << 10, rails=1)
    dual = MultirailHarness(packet_size=8 << 10, rails=2,
                            stripe_policy=StripePolicy(max_rails=2))
    bw1 = single.measure(2 << 20).bandwidth
    bw2 = dual.measure(2 << 20).bandwidth
    assert bw2 >= 1.7 * bw1
