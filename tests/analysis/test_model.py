"""The closed-form §3.3.1 pipeline model vs the full simulation."""

import pytest

from repro.analysis import fragment_time, predict_forwarding
from repro.bench import PingHarness
from repro.hw import GatewayParams, MYRINET, SBP, SCI


def test_fragment_time_components():
    t = fragment_time(MYRINET, 8192)
    assert t == pytest.approx(MYRINET.tx_overhead + MYRINET.latency
                              + (8192 + 16) / MYRINET.host_peak)


def test_fragment_time_rate_override():
    assert fragment_time(MYRINET, 8192, rate=33.0) > fragment_time(MYRINET, 8192)


@pytest.mark.parametrize("packet", [8 << 10, 32 << 10, 128 << 10])
def test_model_matches_simulation_sci_to_myri(packet):
    pred = predict_forwarding(SCI, MYRINET, packet)
    harness = PingHarness(packet_size=packet)
    measured = harness.measure(8 << 20, direction="b0->a0").bandwidth
    assert measured == pytest.approx(pred.bandwidth, rel=0.10)


@pytest.mark.parametrize("packet", [8 << 10, 32 << 10, 128 << 10])
def test_model_matches_simulation_myri_to_sci(packet):
    pred = predict_forwarding(MYRINET, SCI, packet)
    harness = PingHarness(packet_size=packet)
    measured = harness.measure(8 << 20, direction="a0->b0").bandwidth
    assert measured == pytest.approx(pred.bandwidth, rel=0.12)


def test_model_reproduces_direction_asymmetry():
    sm = predict_forwarding(SCI, MYRINET, 128 << 10)
    ms = predict_forwarding(MYRINET, SCI, 128 << 10)
    assert sm.bandwidth > 1.25 * ms.bandwidth
    # the asymmetry comes from the stretched send step specifically
    assert ms.send_us > ms.recv_us
    assert abs(sm.send_us - sm.recv_us) / sm.recv_us < 0.25


def test_model_overhead_term():
    fast = predict_forwarding(SCI, MYRINET, 64 << 10,
                              gateway=GatewayParams(switch_overhead=0.0))
    slow = predict_forwarding(SCI, MYRINET, 64 << 10,
                              gateway=GatewayParams(switch_overhead=160.0))
    assert slow.period_us - fast.period_us == pytest.approx(160.0)


def test_model_handles_non_pio_pairs():
    pred = predict_forwarding(SBP, SCI, 16 << 10)
    assert pred.bandwidth > 0


# -- pipeline disciplines in the closed form ---------------------------------

def test_lockstep_period_formula():
    from repro.hw import PipelineConfig
    pred = predict_forwarding(SCI, MYRINET, 64 << 10,
                              pipeline=PipelineConfig(depth=2))
    assert pred.period_us == pytest.approx(
        max(pred.recv_us, pred.send_us) + GatewayParams().switch_overhead)


def test_credit_period_moves_overhead_off_critical_path():
    from repro.hw import PipelineConfig
    c = GatewayParams().switch_overhead
    pred = predict_forwarding(SCI, MYRINET, 64 << 10,
                              pipeline=PipelineConfig(depth=4))
    assert pred.period_us == pytest.approx(
        max(pred.recv_us + c, pred.send_us))


def test_single_credit_is_store_and_forward():
    from repro.hw import PipelineConfig
    c = GatewayParams().switch_overhead
    for pipe in (PipelineConfig(depth=1),
                 PipelineConfig(depth=4, credits=1)):
        pred = predict_forwarding(SCI, MYRINET, 64 << 10, pipeline=pipe)
        assert pred.period_us == pytest.approx(
            pred.recv_us + c + pred.send_us)


def test_discipline_ordering():
    """serial >= lockstep >= credit, at every fragment size."""
    from repro.hw import PipelineConfig
    for packet in (8 << 10, 32 << 10, 128 << 10):
        serial = predict_forwarding(SCI, MYRINET, packet,
                                    pipeline=PipelineConfig(depth=1))
        lock = predict_forwarding(SCI, MYRINET, packet,
                                  pipeline=PipelineConfig(depth=2))
        credit = predict_forwarding(SCI, MYRINET, packet,
                                    pipeline=PipelineConfig(depth=4))
        assert serial.period_us >= lock.period_us >= credit.period_us


def test_legacy_params_select_the_same_periods():
    from repro.hw import PipelineConfig
    legacy = predict_forwarding(SCI, MYRINET, 64 << 10,
                                gateway=GatewayParams(pipeline_depth=4,
                                                      lockstep=False))
    explicit = predict_forwarding(SCI, MYRINET, 64 << 10,
                                  pipeline=PipelineConfig(depth=4))
    assert legacy.period_us == explicit.period_us


def test_credit_model_matches_simulation():
    """The max(recv + c, send) formula tracks the simulated credit
    pipeline the way the lockstep formula tracks the paper's."""
    from repro.hw import PipelineConfig
    pipe = PipelineConfig(depth=4)
    pred = predict_forwarding(SCI, MYRINET, 32 << 10, pipeline=pipe)
    harness = PingHarness(packet_size=32 << 10, pipeline=pipe)
    measured = harness.measure(8 << 20, direction="b0->a0").bandwidth
    assert measured == pytest.approx(pred.bandwidth, rel=0.10)
