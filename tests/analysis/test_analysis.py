"""Tests for bandwidth-curve and pipeline-trace analysis."""

import pytest

from repro.analysis import (bandwidth, crossover_size, extract_timeline,
                            fit_linear_cost, half_bandwidth_point,
                            pipeline_stats, plot_series, render_timeline)
from repro.bench import Series
from repro.hw import build_world
from repro.madeleine import Session
from tests.conftest import payload, transfer_once


def test_bandwidth_helper():
    assert bandwidth(1000, 10) == 100
    with pytest.raises(ValueError):
        bandwidth(1, 0)


def test_fit_linear_cost_recovers_model():
    lat, bw = 150.0, 66.0
    sizes = [1 << k for k in range(10, 21)]
    times = [lat + s / bw for s in sizes]
    got_lat, got_bw = fit_linear_cost(sizes, times)
    assert got_lat == pytest.approx(lat, rel=1e-6)
    assert got_bw == pytest.approx(bw, rel=1e-6)


def test_fit_linear_cost_validation():
    with pytest.raises(ValueError):
        fit_linear_cost([1], [2])
    with pytest.raises(ValueError):
        fit_linear_cost([1, 2], [5, 4])   # negative per-byte cost


def test_half_bandwidth_point():
    s = Series("s", sizes=[1, 2, 4, 8], bandwidths=[10, 25, 45, 50])
    # asymptote = 50, half = 25 -> first size reaching it is 2
    assert half_bandwidth_point(s) == 2
    never = Series("n", sizes=[1, 2], bandwidths=[1, 1])
    assert half_bandwidth_point(never) == 1   # trivially at its own plateau


def test_crossover_size():
    sci = Series("sci", sizes=[1, 2, 4], bandwidths=[30, 35, 40])
    myri = Series("myri", sizes=[1, 2, 4], bandwidths=[10, 36, 60])
    assert crossover_size(sci, myri) == 2
    assert crossover_size(myri, sci) == 1   # sci >= myri already at size 1


def gateway_trace(direction, packet=16 << 10, size=300_000):
    src, dst = (2, 0) if direction == "sci->myri" else (0, 2)
    w = build_world({"m0": ["myrinet"], "gw": ["myrinet", "sci"],
                     "s0": ["sci"]})
    s = Session(w)
    vch = s.virtual_channel([
        s.channel("myrinet", ["m0", "gw"]),
        s.channel("sci", ["gw", "s0"]),
    ], packet_size=packet)
    transfer_once(s, vch, src, dst, payload(size))
    return w


def test_extract_timeline_structure():
    w = gateway_trace("sci->myri")
    steps = extract_timeline(w.trace)
    frags = [st for st in steps if st.kind == "frag"]
    assert len(frags) == (300_000 + (16 << 10) - 1) // (16 << 10)
    for st in frags:
        assert st.recv_end > st.recv_start
        assert st.swap_end is not None and st.swap_end >= st.recv_end
        assert st.send_end > st.send_start >= st.recv_end


def test_pipeline_stats_overlap_positive():
    """Double buffering: sends must overlap receives (Figure 5)."""
    w = gateway_trace("sci->myri")
    stats = pipeline_stats(extract_timeline(w.trace))
    assert stats.fragments > 10
    assert stats.overlap_fraction > 0.3
    assert stats.mean_period_us > 0


def test_fig8_send_slowdown_detected():
    """Myrinet->SCI: PIO sends under DMA pressure take much longer relative
    to receives than in the opposite direction (the Figure 8 pathology)."""
    kw = dict(packet=128 << 10, size=2_000_000)
    ratio_ms = pipeline_stats(extract_timeline(
        gateway_trace("myri->sci", **kw).trace)).send_recv_ratio
    ratio_sm = pipeline_stats(extract_timeline(
        gateway_trace("sci->myri", **kw).trace)).send_recv_ratio
    # SCI->Myrinet is balanced (both steps ~equal, Figure 5); Myrinet->SCI
    # sends are stretched by the PCI conflict (Figure 8).
    assert ratio_sm < 1.15
    assert ratio_ms > 1.3


def test_pipeline_stats_empty_rejected():
    with pytest.raises(ValueError):
        pipeline_stats([])


def test_render_timeline_ascii():
    w = gateway_trace("sci->myri")
    out = render_timeline(extract_timeline(w.trace))
    assert "recv  |" in out and "send  |" in out
    assert "R" in out and "S" in out
    assert render_timeline([]) == "(empty timeline)"


def test_plot_series_smoke():
    a = Series("a", sizes=[1024, 4096, 16384], bandwidths=[5, 20, 40])
    out = plot_series([a], title="t")
    assert "t" in out
    assert "o a" in out
    assert plot_series([Series("e")]) == "(no data)"
