"""Strict-JSON serialization of benchmark artifacts."""

import json
import math

import pytest

from repro.bench.jsonio import dump_json, json_safe, load_json


def test_non_finite_floats_become_null():
    src = {"a": float("nan"), "b": float("inf"), "c": float("-inf"),
           "d": 1.5, "e": 7, "f": "nan"}
    out = json_safe(src)
    assert out == {"a": None, "b": None, "c": None,
                   "d": 1.5, "e": 7, "f": "nan"}


def test_nested_containers_sanitized_recursively():
    src = {"rows": [{"x": float("nan")}, {"x": 2.0}],
           "grid": (float("inf"), 3.0)}
    out = json_safe(src)
    assert out == {"rows": [{"x": None}, {"x": 2.0}], "grid": [None, 3.0]}


def test_dump_json_round_trips_strictly(tmp_path):
    path = tmp_path / "out.json"
    dump_json({"events_per_mb": float("nan"), "goodput": 42.0}, path)
    text = path.read_text()
    assert "NaN" not in text and "Infinity" not in text
    assert json.loads(text) == {"events_per_mb": None, "goodput": 42.0}


def test_load_json_rejects_legacy_bare_constants(tmp_path):
    path = tmp_path / "legacy.json"
    path.write_text('{"events_per_mb": Infinity}')
    with pytest.raises(ValueError, match="not valid JSON"):
        load_json(path)
    path.write_text('{"x": NaN}')
    with pytest.raises(ValueError, match="regenerate"):
        load_json(path)


def test_load_json_reads_sanitized_output(tmp_path):
    path = tmp_path / "ok.json"
    dump_json({"x": float("inf"), "y": [1, 2]}, path)
    assert load_json(path) == {"x": None, "y": [1, 2]}


def test_traffic_summary_serializes_strictly_even_with_no_completions():
    """The original bug: a zero-completion summary carried ``inf`` that
    json.dumps happily wrote as bare ``Infinity``."""
    summary = {"completed": 0, "p99_fct_us": float("nan"),
               "events_per_mb": float("nan")}
    text = json.dumps(json_safe(summary), allow_nan=False)
    assert json.loads(text)["events_per_mb"] is None


def test_summary_stats_are_finite_exactly_when_flows_completed():
    # json_safe must not mask finite values
    assert json_safe(3.14) == 3.14
    assert json_safe(0.0) == 0.0
    assert not math.isfinite(float("nan"))
