"""Figure-sweep harness tests (small grids to stay fast)."""


from repro.bench import (PAPER_MESSAGE_SIZES, PAPER_PACKET_SIZES, Series,
                         figure_sweep)


def test_paper_constants():
    assert PAPER_PACKET_SIZES == (8 << 10, 16 << 10, 32 << 10, 64 << 10,
                                  128 << 10)
    assert PAPER_MESSAGE_SIZES[0] == 8 << 10
    assert PAPER_MESSAGE_SIZES[-1] == 16 << 20


def test_figure_sweep_small_grid():
    curves = figure_sweep("b0->a0", packet_sizes=(16 << 10,),
                          message_sizes=(32 << 10, 128 << 10))
    assert len(curves) == 1
    c = curves[0]
    assert c.label == "paquet 16 KB"
    assert c.sizes == [32 << 10, 128 << 10]
    assert c.meta["packet_size"] == 16 << 10
    assert all(b > 0 for b in c.bandwidths)


def test_figure_sweep_skips_messages_smaller_than_packet():
    curves = figure_sweep("b0->a0", packet_sizes=(64 << 10,),
                          message_sizes=(8 << 10, 64 << 10, 256 << 10))
    assert curves[0].sizes == [64 << 10, 256 << 10]


def test_figure_sweep_direction_asymmetry_on_grid():
    kw = dict(packet_sizes=(64 << 10,), message_sizes=(4 << 20,))
    sm = figure_sweep("b0->a0", **kw)[0]
    ms = figure_sweep("a0->b0", **kw)[0]
    assert sm.bandwidths[0] > ms.bandwidths[0]


def test_series_as_rows():
    s = Series("x", sizes=[1, 2], bandwidths=[3.0, 4.0])
    assert s.as_rows() == [(1, 3.0), (2, 4.0)]
