"""Tests for the §3.1 ping measurement method."""

import pytest

from repro.bench import (PingHarness, Series, bandwidth_sweep,
                         format_comparison, format_series_table,
                         human_size, measure_ack_latency, PaperPoint)
from repro.hw import build_world
from repro.madeleine import Session


def test_ack_calibration_positive_and_repeatable():
    w = build_world({"a": ["fast_ethernet"], "b": ["fast_ethernet"]})
    s = Session(w)
    ack = s.channel("fast_ethernet", ["a", "b"])
    l1 = measure_ack_latency(s, ack, 0, 1)
    l2 = measure_ack_latency(s, ack, 0, 1)
    assert l1 > 0
    assert l1 == pytest.approx(l2)


def test_ping_method_matches_direct_measurement():
    """The RTT-minus-ack estimate must agree with the directly observed
    one-way time (this is exactly why the paper's method is sound)."""
    harness = PingHarness(packet_size=16 << 10)
    res = harness.measure(256 << 10, direction="b0->a0")
    assert res.one_way_us == pytest.approx(res.direct_us, rel=0.02)


def test_ping_directions_differ():
    harness = PingHarness(packet_size=64 << 10)
    sm = harness.measure(1 << 20, direction="b0->a0")   # SCI -> Myrinet
    ms = harness.measure(1 << 20, direction="a0->b0")   # Myrinet -> SCI
    assert sm.bandwidth > ms.bandwidth


def test_ping_bad_direction_rejected():
    with pytest.raises(ValueError):
        PingHarness().measure(1024, direction="sideways")


def test_bandwidth_monotone_in_message_size():
    harness = PingHarness(packet_size=32 << 10)
    series = bandwidth_sweep(lambda n: harness.measure(n, "b0->a0"),
                             [64 << 10, 256 << 10, 1 << 20], "sweep")
    assert series.bandwidths == sorted(series.bandwidths)


def test_series_asymptote():
    s = Series("x", sizes=[1, 2, 3, 4], bandwidths=[10, 20, 30, 40])
    assert s.asymptote == pytest.approx(40)
    with pytest.raises(ValueError):
        Series("empty").asymptote


def test_human_size():
    assert human_size(512) == "512 B"
    assert human_size(8 << 10) == "8 KB"
    assert human_size(2 << 20) == "2 MB"
    assert human_size(1536) == "1536 B"


def test_format_series_table_contains_all_points():
    a = Series("paquet 8 KB", sizes=[8192, 16384], bandwidths=[10.0, 20.0])
    b = Series("paquet 16 KB", sizes=[16384], bandwidths=[25.0])
    out = format_series_table([a, b], title="Figure X")
    assert "Figure X" in out
    assert "8 KB" in out and "16 KB" in out
    assert "25.0" in out and "10.0" in out


def test_format_comparison():
    pts = [PaperPoint("asymptotic bandwidth", 60.0, 55.0, note="fig 6")]
    out = format_comparison(pts, title="check")
    assert "0.92x" in out
    assert "fig 6" in out
