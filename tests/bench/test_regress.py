"""The benchmark-regression harness: comparison logic and a live quick run."""

import json

import pytest

from repro.bench import regress as rg


@pytest.fixture
def baseline():
    return {
        "tolerance": 0.10,
        "pre_pr3": {"fig5_events_per_mb": 500.0, "min_event_reduction": 0.20},
        "scenarios": {
            "fig5": {"elapsed_us": 1000.0, "events_per_mb": 400.0},
            "fig6": {"asymptote_64k_mbs": 50.0},
        },
    }


def test_identical_run_passes(baseline):
    current = {name: dict(m) for name, m in baseline["scenarios"].items()}
    assert rg.compare_to_baseline(current, baseline) == []


def test_drift_within_band_passes(baseline):
    current = {"fig5": {"elapsed_us": 1050.0, "events_per_mb": 395.0},
               "fig6": {"asymptote_64k_mbs": 52.0}}
    assert rg.compare_to_baseline(current, baseline) == []


def test_drift_outside_band_fails(baseline):
    current = {"fig5": {"elapsed_us": 1200.0, "events_per_mb": 400.0},
               "fig6": {"asymptote_64k_mbs": 50.0}}
    failures = rg.compare_to_baseline(current, baseline)
    assert len(failures) == 1
    assert "fig5.elapsed_us" in failures[0]


def test_missing_metric_fails(baseline):
    current = {"fig5": {"elapsed_us": 1000.0, "events_per_mb": 400.0},
               "fig6": {}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("fig6.asymptote_64k_mbs" in f and "missing" in f
               for f in failures)


def test_skipped_scenario_is_not_a_failure(baseline):
    # --quick runs omit the sweeps; only scenarios that ran are compared.
    current = {"fig5": {"elapsed_us": 1000.0, "events_per_mb": 400.0}}
    assert rg.compare_to_baseline(current, baseline) == []


def test_event_reduction_floor_enforced(baseline):
    # 450/500 is only a 10% cut — below the committed 20% floor, even
    # though no baseline metric drifted.
    current = {"fig5": {"elapsed_us": 1000.0, "events_per_mb": 450.0}}
    failures = rg.compare_to_baseline(current, baseline,
                                      tolerance=0.2)
    assert any("pre-optimisation" in f for f in failures)


def test_tolerance_override(baseline):
    current = {"fig5": {"elapsed_us": 1040.0, "events_per_mb": 400.0},
               "fig6": {"asymptote_64k_mbs": 50.0}}
    assert rg.compare_to_baseline(current, baseline, tolerance=0.05) == []
    assert rg.compare_to_baseline(current, baseline, tolerance=0.01)


def test_write_baseline_preserves_pre_pr3_reference(tmp_path):
    path = tmp_path / "baseline.json"
    rg.write_baseline({"fig5": {"x": 1.0}}, path,
                      pre_pr3={"fig5_events_per_mb": 500.0})
    rg.write_baseline({"fig5": {"x": 2.0}}, path)   # refresh without pre_pr3
    data = json.loads(path.read_text())
    assert data["pre_pr3"] == {"fig5_events_per_mb": 500.0}
    assert data["scenarios"]["fig5"]["x"] == 2.0


def test_quick_run_matches_committed_baseline(tmp_path):
    """The committed baseline must reproduce exactly on this checkout —
    the simulator is deterministic, so any difference is a real change."""
    current = rg.run_regress(quick=True)
    baseline = json.loads(rg.DEFAULT_BASELINE.read_text(encoding="utf-8"))
    failures = rg.compare_to_baseline(current, baseline)
    assert failures == []
    for name in rg._QUICK_SCENARIOS:
        for metric, value in current[name].items():
            if metric.startswith("wall_") or metric == "solver_speedup":
                continue   # wall clock varies with the machine
            assert value == baseline["scenarios"][name][metric], \
                f"{name}.{metric} not bit-identical to the committed baseline"
    out = tmp_path / "bench.json"
    rg.write_results(current, baseline, failures, out)
    payload = json.loads(out.read_text())
    assert payload["comparison"]["status"] == "pass"
    assert payload["kernel"]["event_reduction"] >= 0.20


def test_non_finite_current_metric_fails_explicitly(baseline):
    current = {"fig5": {"elapsed_us": float("nan"), "events_per_mb": 400.0},
               "fig6": {"asymptote_64k_mbs": 50.0}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("fig5.elapsed_us" in f and "non-finite" in f
               for f in failures)


def test_null_current_metric_fails_explicitly(baseline):
    # json_safe writes NaN as null; a null metric read back must fail,
    # not silently compare equal or crash.
    current = {"fig5": {"elapsed_us": None, "events_per_mb": 400.0},
               "fig6": {"asymptote_64k_mbs": 50.0}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("fig5.elapsed_us" in f and "missing" in f for f in failures)


def test_null_baseline_metric_fails_explicitly(baseline):
    baseline["scenarios"]["fig5"]["elapsed_us"] = None
    current = {"fig5": {"elapsed_us": 1000.0, "events_per_mb": 400.0},
               "fig6": {"asymptote_64k_mbs": 50.0}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("baseline" in f and "re-measure" in f for f in failures)


def test_write_results_is_strict_json(tmp_path, baseline):
    current = {"fig5": {"elapsed_us": float("inf"),
                        "events_per_mb": 400.0}}
    out = tmp_path / "bench.json"
    rg.write_results(current, baseline, [], out)
    text = out.read_text()
    assert "Infinity" not in text
    assert json.loads(text)["scenarios"]["fig5"]["elapsed_us"] is None


# -- feature floors -----------------------------------------------------------

def test_pipeline_gain_floor_enforced(baseline):
    baseline["floors"] = {"pipeline_depth4_gain": 0.10}
    current = {"pipeline": {"depth4_gain": 0.04}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("pipeline.depth4_gain" in f for f in failures)
    current = {"pipeline": {"depth4_gain": 0.12}}
    assert rg.compare_to_baseline(current, baseline) == []


def test_batching_reduction_floor_enforced(baseline):
    baseline["floors"] = {"batching_record_reduction": 0.25}
    current = {"batching": {"record_reduction": 0.10}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("batching.record_reduction" in f for f in failures)


def test_event_growth_ceiling_enforced(baseline):
    # A *maximum*-type floor: growth above the ceiling fails, below passes.
    baseline["floors"] = {"sweep_nodes_event_growth": 1.3}
    current = {"sweep_nodes": {"event_growth": 1.45}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("sweep_nodes.event_growth" in f and "sub-linear" in f
               for f in failures)
    current = {"sweep_nodes": {"event_growth": 0.9}}
    assert rg.compare_to_baseline(current, baseline) == []


def test_floors_ignored_when_scenario_skipped(baseline):
    # a --quick subset that omits the scenario must not trip its floor
    baseline["floors"] = {"pipeline_depth4_gain": 0.10,
                          "batching_record_reduction": 0.25}
    current = {"fig5": {"elapsed_us": 1000.0, "events_per_mb": 400.0}}
    assert rg.compare_to_baseline(current, baseline) == []


def test_write_baseline_preserves_floors(tmp_path):
    path = tmp_path / "baseline.json"
    rg.write_baseline({"fig5": {"x": 1.0}}, path)
    data = json.loads(path.read_text())
    data["floors"]["pipeline_depth4_gain"] = 0.42   # a raised commitment
    path.write_text(json.dumps(data))
    rg.write_baseline({"fig5": {"x": 2.0}}, path)   # refresh keeps it
    data = json.loads(path.read_text())
    assert data["floors"]["pipeline_depth4_gain"] == 0.42
    assert data["floors"]["batching_record_reduction"] == \
        rg.DEFAULT_FLOORS["batching_record_reduction"]


def test_recompute_fraction_ceiling_enforced(baseline):
    baseline["floors"] = {"incremental_recompute_fraction": 0.25}
    current = {"incremental_rates": {"des_recompute_fraction": 0.40}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("incremental_rates.des_recompute_fraction" in f
               and "ceiling" in f for f in failures)
    current = {"incremental_rates": {"des_recompute_fraction": 0.06}}
    assert rg.compare_to_baseline(current, baseline) == []


def test_solver_speedup_floor_enforced(baseline):
    baseline["floors"] = {"incremental_solver_speedup": 2.0}
    current = {"incremental_rates": {"solver_speedup": 1.4,
                                     "fct_agreement_ok": 1.0}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("incremental_rates.solver_speedup" in f for f in failures)
    current = {"incremental_rates": {"solver_speedup": 2.3,
                                     "fct_agreement_ok": 1.0}}
    assert rg.compare_to_baseline(current, baseline) == []


def test_fct_disagreement_always_fails(baseline):
    # agreement is a hard gate, not a band: any divergence between the
    # incremental solver and the full/PR 8 reference schedules fails.
    baseline["floors"] = {"incremental_solver_speedup": 2.0}
    current = {"incremental_rates": {"solver_speedup": 3.0,
                                     "fct_agreement_ok": 0.0}}
    failures = rg.compare_to_baseline(current, baseline)
    assert any("fct_agreement_ok" in f for f in failures)


def test_wall_clock_metrics_excluded_from_band_comparison(baseline):
    # wall_* and solver_speedup vary with the machine — a slow CI runner
    # must not trip the tolerance band on them (floors still apply).
    baseline["scenarios"]["incremental_rates"] = {
        "wall_incremental_s": 0.5, "wall_legacy_s": 1.0,
        "solver_speedup": 2.4, "des_recompute_fraction": 0.06}
    current = {"incremental_rates": {
        "wall_incremental_s": 5.0, "wall_legacy_s": 1.0,
        "solver_speedup": 9.9, "des_recompute_fraction": 0.06}}
    assert rg.compare_to_baseline(current, baseline) == []


# -- parallel-run determinism -------------------------------------------------

def test_scenario_seeding_is_independent_of_caller_state():
    """Each scenario reseeds from its own name, so results cannot depend on
    which worker process (or prior scenario) ran it."""
    import random
    random.seed(12345)
    first = rg._run_scenario("latency")
    random.seed(99999)
    for _ in range(17):
        random.random()
    second = rg._run_scenario("latency")
    assert first == second
