"""Install the offline ``wheel`` shim into the active interpreter.

Usage: ``python tools/wheel_shim/install.py``

Copies the ``wheel`` package next to this script into site-packages and
writes a ``wheel-0.38.4.dist-info`` so pip and setuptools discover it
(including the ``distutils.commands`` entry point for ``bdist_wheel``).
Does nothing if a real ``wheel`` distribution is already importable.
"""

from __future__ import annotations

import os
import shutil
import site
import sys


def main() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    # sys.path[0] is this script's directory, which contains the shim source
    # itself — remove it so the availability check sees only installed copies.
    sys.path = [p for p in sys.path if os.path.abspath(p or os.getcwd()) != here]
    try:
        import wheel  # noqa: F401
        print(f"wheel already available ({wheel.__version__}); nothing to do")
        return 0
    except ImportError:
        pass
    src = os.path.join(here, "wheel")
    target_dir = site.getsitepackages()[0]
    dst = os.path.join(target_dir, "wheel")
    shutil.copytree(src, dst, dirs_exist_ok=True)

    dist_info = os.path.join(target_dir, "wheel-0.38.4.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w", encoding="utf-8") as fh:
        fh.write(
            "Metadata-Version: 2.1\n"
            "Name: wheel\n"
            "Version: 0.38.4\n"
            "Summary: offline shim providing bdist_wheel and WheelFile\n"
        )
    with open(os.path.join(dist_info, "entry_points.txt"), "w",
              encoding="utf-8") as fh:
        fh.write(
            "[distutils.commands]\n"
            "bdist_wheel = wheel.bdist_wheel:bdist_wheel\n"
        )
    with open(os.path.join(dist_info, "INSTALLER"), "w", encoding="utf-8") as fh:
        fh.write("wheel_shim\n")
    with open(os.path.join(dist_info, "RECORD"), "w", encoding="utf-8") as fh:
        fh.write("")
    print(f"installed wheel shim into {target_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
