"""A ZipFile subclass that maintains the wheel RECORD manifest."""

from __future__ import annotations

import base64
import csv
import hashlib
import io
import os
import re
import zipfile

_WHEEL_NAME_RE = re.compile(
    r"^(?P<name>[^-]+)-(?P<version>[^-]+?)"
    r"(-(?P<build>\d[^-]*))?-(?P<pytag>[^-]+)-(?P<abi>[^-]+)-(?P<plat>[^-]+)\.whl$"
)


def _hash_entry(data: bytes) -> tuple[str, int]:
    digest = hashlib.sha256(data).digest()
    b64 = base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")
    return f"sha256={b64}", len(data)


class WheelFile(zipfile.ZipFile):
    """Read/write access to a .whl archive with automatic RECORD handling."""

    def __init__(self, file, mode: str = "r",
                 compression: int = zipfile.ZIP_DEFLATED) -> None:
        basename = os.path.basename(str(file))
        match = _WHEEL_NAME_RE.match(basename)
        if not match:
            raise ValueError(f"bad wheel filename: {basename!r}")
        self.parsed_filename = match
        self.dist_info_path = f"{match.group('name')}-{match.group('version')}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._records: list[tuple[str, str, str]] = []
        super().__init__(file, mode=mode, compression=compression, allowZip64=True)

    # -- writing -----------------------------------------------------------
    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):  # noqa: D102
        if isinstance(data, str):
            data = data.encode("utf-8")
        arcname = (zinfo_or_arcname.filename
                   if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
                   else str(zinfo_or_arcname))
        if arcname != self.record_path:
            h, size = _hash_entry(data)
            self._records.append((arcname, h, str(size)))
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)

    def write(self, filename, arcname=None, *args, **kwargs):  # noqa: D102
        arcname = str(arcname if arcname is not None else filename)
        with open(filename, "rb") as fh:
            data = fh.read()
        if arcname != self.record_path:
            h, size = _hash_entry(data)
            self._records.append((arcname, h, str(size)))
        super().write(filename, arcname, *args, **kwargs)

    def write_files(self, base_dir) -> None:
        """Add every file under ``base_dir`` (sorted, deterministic)."""
        base_dir = str(base_dir)
        paths = []
        for root, _dirs, files in os.walk(base_dir):
            for name in files:
                full = os.path.join(root, name)
                rel = os.path.relpath(full, base_dir).replace(os.sep, "/")
                paths.append((rel, full))
        for rel, full in sorted(paths):
            if rel != self.record_path:
                self.write(full, rel)

    def close(self) -> None:  # noqa: D102
        if self.fp is not None and self.mode == "w":
            buf = io.StringIO()
            writer = csv.writer(buf, delimiter=",", quotechar='"', lineterminator="\n")
            for row in self._records:
                writer.writerow(row)
            writer.writerow((self.record_path, "", ""))
            super().writestr(self.record_path, buf.getvalue().encode("utf-8"))
        super().close()
