"""Minimal ``bdist_wheel`` distutils command for pure-Python projects."""

from __future__ import annotations

import os
import re
import shutil

from distutils import log
from distutils.core import Command

from .wheelfile import WheelFile


def _safe_name(name: str) -> str:
    return re.sub(r"[^\w\d.]+", "_", name, flags=re.UNICODE)


def _safe_version(version: str) -> str:
    return _safe_name(version.replace(" ", "."))


def _convert_requires(requires_txt: str) -> list[str]:
    """Translate an egg-info requires.txt into METADATA Requires-Dist and
    Provides-Extra lines."""
    lines: list[str] = []
    extra = None
    marker = None
    for raw in requires_txt.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1]
            if ":" in section:
                extra, marker = section.split(":", 1)
            else:
                extra, marker = section, None
            extra = extra.strip() or None
            if extra:
                lines.append(f"Provides-Extra: {extra}")
            continue
        conditions = []
        if extra:
            conditions.append(f'extra == "{extra}"')
        if marker:
            conditions.append(f"({marker.strip()})")
        if conditions:
            lines.append(f"Requires-Dist: {line} ; {' and '.join(conditions)}")
        else:
            lines.append(f"Requires-Dist: {line}")
    return lines


class bdist_wheel(Command):
    """Build a py3-none-any wheel (offline shim; no C extensions)."""

    description = "create a wheel distribution (minimal offline shim)"

    user_options = [
        ("bdist-dir=", "b", "temporary directory for creating the distribution"),
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the pseudo-installation tree"),
        ("universal", None, "ignored (compatibility)"),
        ("python-tag=", None, "ignored (compatibility)"),
    ]
    boolean_options = ["keep-temp", "universal"]

    def initialize_options(self) -> None:
        self.bdist_dir = None
        self.dist_dir = None
        self.keep_temp = False
        self.universal = False
        self.python_tag = "py3"

    def finalize_options(self) -> None:
        if self.bdist_dir is None:
            bdist_base = self.get_finalized_command("bdist").bdist_base
            self.bdist_dir = os.path.join(bdist_base, "wheel")
        if self.dist_dir is None:
            self.dist_dir = "dist"

    # -- helpers used by setuptools (dist_info / editable_wheel) ------------
    @property
    def wheel_dist_name(self) -> str:
        return "-".join((
            _safe_name(self.distribution.get_name()),
            _safe_version(self.distribution.get_version()),
        ))

    def get_tag(self) -> tuple[str, str, str]:
        return ("py3", "none", "any")

    def write_wheelfile(self, wheelfile_base: str,
                        generator: str = "bdist_wheel-shim") -> None:
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            "Root-Is-Purelib: true\n"
            f"Tag: {'-'.join(self.get_tag())}\n"
        )
        with open(os.path.join(wheelfile_base, "WHEEL"), "w",
                  encoding="utf-8") as fh:
            fh.write(content)

    def egg2dist(self, egginfo_path: str, distinfo_path: str) -> None:
        """Convert an .egg-info directory into a .dist-info directory."""
        os.makedirs(distinfo_path, exist_ok=True)
        pkg_info = os.path.join(egginfo_path, "PKG-INFO")
        metadata_lines: list[str] = []
        if os.path.exists(pkg_info):
            with open(pkg_info, encoding="utf-8") as fh:
                metadata = fh.read()
        else:  # pragma: no cover - egg_info always writes PKG-INFO
            metadata = "Metadata-Version: 2.1\nName: unknown\nVersion: 0\n"
        requires = os.path.join(egginfo_path, "requires.txt")
        if os.path.exists(requires):
            with open(requires, encoding="utf-8") as fh:
                metadata_lines = _convert_requires(fh.read())
        if metadata_lines:
            head, sep, body = metadata.partition("\n\n")
            metadata = head + "\n" + "\n".join(metadata_lines) + sep + body
        with open(os.path.join(distinfo_path, "METADATA"), "w",
                  encoding="utf-8") as fh:
            fh.write(metadata)
        for extra in ("entry_points.txt", "top_level.txt"):
            src = os.path.join(egginfo_path, extra)
            if os.path.exists(src):
                shutil.copy2(src, os.path.join(distinfo_path, extra))
        shutil.rmtree(egginfo_path, ignore_errors=True)

    # -- full wheel build (pip install . / pip wheel) ------------------------
    def run(self) -> None:
        build = self.reinitialize_command("build", reinit_subcommands=True)
        build.build_lib = os.path.join(self.bdist_dir, "lib")
        self.run_command("build")

        egg_info = self.get_finalized_command("egg_info")
        egg_info.run()

        distinfo_dirname = f"{self.wheel_dist_name}.dist-info"
        distinfo_path = os.path.join(build.build_lib, distinfo_dirname)
        self.egg2dist(egg_info.egg_info, distinfo_path)
        self.write_wheelfile(distinfo_path)

        os.makedirs(self.dist_dir, exist_ok=True)
        archive = os.path.join(
            self.dist_dir, f"{self.wheel_dist_name}-{'-'.join(self.get_tag())}.whl")
        if os.path.exists(archive):
            os.unlink(archive)
        log.info("creating %s", archive)
        with WheelFile(archive, "w") as wf:
            wf.write_files(build.build_lib)
        # Expose the result where setuptools' build_meta looks for it.
        self.distribution.dist_files.append(("bdist_wheel", "any", archive))
        if not self.keep_temp:
            shutil.rmtree(self.bdist_dir, ignore_errors=True)
