"""Minimal offline stand-in for the PyPA ``wheel`` package.

Provides just enough surface (``wheel.wheelfile.WheelFile`` and
``wheel.bdist_wheel.bdist_wheel``) for setuptools to build regular and
PEP 660 editable wheels of *pure-Python* projects in environments without
network access.  Installed by ``tools/wheel_shim/install.py``.
"""

__version__ = "0.38.4"
