"""Chaos harness: reliable forwarding under a randomized fault schedule.

Builds the canonical cluster-of-clusters testbed (a Myrinet sender, two
Myrinet+SCI gateways, an SCI receiver), arms a seeded
:class:`~repro.faults.FaultPlan`, pushes a batch of reliable transfers
through the virtual channel, and verifies every payload arrives intact.
The schedule is a pure function of ``--seed``, so a failing run is a
reproducible bug report: re-run with the same arguments and the same
fragment is dropped at the same simulated microsecond.

Two ways to drive it:

* explicit knobs — ``--drop``, ``--corrupt``, ``--crash``, ``--flap``
  pin the fault schedule directly;
* ``--random`` — draw the whole schedule (rates, crash time, flap
  windows) from the seed, within sane bounds.

Exit status is 0 iff every message was delivered byte-identical.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.faults import ChannelFaults, FaultPlan, LinkEvent, NodeEvent
from repro.hw import build_world
from repro.hw.params import GatewayParams
from repro.madeleine import ReliableEndpoint, RetryPolicy, Session
from repro.sim.errors import ProcessCrashed, RetryExhausted

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos", "replay_command",
           "main"]


@dataclass
class ChaosConfig:
    """One chaos run, fully determined by its fields."""

    seed: int = 0
    messages: int = 4
    nbytes: int = 120_000
    drop_p: float = 0.03
    corrupt_p: float = 0.015
    delay_p: float = 0.0
    delay_us: float = 0.0
    #: crash gwA at this simulated time (µs); None = no crash.
    crash_at: Optional[float] = None
    #: restart the crashed gateway this long after the crash; None = stays down.
    restart_after: Optional[float] = None
    #: (down_at, up_at) windows during which the SCI rail is down.
    flaps: Sequence[Tuple[float, float]] = ()
    packet_size: int = 16 << 10
    gw_stall_timeout: float = 5_000.0
    max_attempts: int = 8


@dataclass
class ChaosReport:
    """What happened: integrity verdict plus recovery statistics."""

    ok: bool
    delivered: int
    expected: int
    corrupt: List[int] = field(default_factory=list)
    attempts: List[int] = field(default_factory=list)
    retransmits: int = 0
    fragments_dropped: int = 0
    fragments_corrupted: int = 0
    messages_abandoned: int = 0
    failovers: int = 0
    error: Optional[str] = None

    def summary(self) -> str:
        lines = [
            f"delivered {self.delivered}/{self.expected} messages "
            f"({'all intact' if self.ok else 'FAILED'})",
            f"attempts per message : {self.attempts}",
            f"retransmissions      : {self.retransmits}",
            f"fragments dropped    : {self.fragments_dropped}",
            f"fragments corrupted  : {self.fragments_corrupted}",
            f"gateway msgs abandoned: {self.messages_abandoned}",
            f"route failovers      : {self.failovers}",
        ]
        if self.corrupt:
            lines.append(f"corrupted payloads   : {self.corrupt}")
        if self.error:
            lines.append(f"error                : {self.error}")
        return "\n".join(lines)


def random_config(seed: int, messages: int = 4,
                  nbytes: int = 120_000) -> ChaosConfig:
    """Draw a whole fault schedule from ``seed`` (bounded severity)."""
    rng = np.random.default_rng(seed)
    cfg = ChaosConfig(
        seed=seed, messages=messages, nbytes=nbytes,
        drop_p=float(rng.uniform(0.0, 0.05)),
        corrupt_p=float(rng.uniform(0.0, 0.025)),
        delay_p=float(rng.uniform(0.0, 0.1)),
        delay_us=float(rng.uniform(0.0, 200.0)),
    )
    if rng.random() < 0.5:
        cfg.crash_at = float(rng.uniform(1_000.0, 20_000.0))
        if rng.random() < 0.5:
            cfg.restart_after = float(rng.uniform(10_000.0, 100_000.0))
    if rng.random() < 0.3:
        down = float(rng.uniform(5_000.0, 50_000.0))
        cfg.flaps = ((down, down + float(rng.uniform(5_000.0, 30_000.0))),)
    return cfg


def run_chaos(cfg: ChaosConfig) -> ChaosReport:
    """Execute one chaos run; never raises on injected faults."""
    w = build_world({
        "m0": ["myrinet"], "gwA": ["myrinet", "sci"],
        "gwB": ["myrinet", "sci"], "s0": ["sci"],
    })
    s = Session(w, telemetry=True)
    myri = s.channel("myrinet", ["m0", "gwA", "gwB"])
    sci = s.channel("sci", ["gwA", "gwB", "s0"])
    faults = ChannelFaults(drop_p=cfg.drop_p, corrupt_p=cfg.corrupt_p,
                           delay_p=cfg.delay_p, delay_us=cfg.delay_us)
    node_events = []
    if cfg.crash_at is not None:
        node_events.append(NodeEvent(time=cfg.crash_at, node="gwA"))
        if cfg.restart_after is not None:
            node_events.append(NodeEvent(time=cfg.crash_at + cfg.restart_after,
                                         node="gwA", up=True))
    link_events = []
    for down_at, up_at in cfg.flaps:
        # Flap the Myrinet rail: the link driver takes the channel down and
        # back up; in-flight fragments during the window are dropped.
        link_events.append(LinkEvent(time=down_at, channel=myri.id))
        link_events.append(LinkEvent(time=up_at, channel=myri.id, up=True))
    plan = FaultPlan(seed=cfg.seed,
                     channels={myri.id: faults, sci.id: faults},
                     link_events=tuple(link_events),
                     node_events=tuple(node_events))
    plan.arm(w)
    vch = s.virtual_channel(
        [myri, sci], packet_size=cfg.packet_size,
        gateway_params=GatewayParams(stall_timeout=cfg.gw_stall_timeout))

    rng = np.random.default_rng(cfg.seed)
    payloads = [rng.integers(0, 256, cfg.nbytes, dtype=np.uint8).tobytes()
                for _ in range(cfg.messages)]
    policy = RetryPolicy(max_attempts=cfg.max_attempts)
    rel_src = ReliableEndpoint(vch.endpoint(s.rank("m0")), policy)
    rel_dst = ReliableEndpoint(vch.endpoint(s.rank("s0")), policy)
    report = ChaosReport(ok=False, delivered=0, expected=cfg.messages)
    got: List[bytes] = []

    def sender():
        for p in payloads:
            n = yield from rel_src.send(s.rank("s0"), p)
            report.attempts.append(n)

    def receiver():
        for _ in payloads:
            _src, data, _tid = yield from rel_dst.recv()
            got.append(data)

    s.spawn(sender(), name="chaos-send")
    s.spawn(receiver(), name="chaos-recv")
    try:
        s.run()
    except ProcessCrashed as exc:
        report.error = f"{type(exc.__cause__ or exc).__name__}: {exc}"
    except RetryExhausted as exc:
        report.error = f"RetryExhausted: {exc}"

    report.delivered = len(got)
    report.corrupt = [i for i, data in enumerate(got)
                      if data != payloads[i]]
    report.ok = (report.delivered == cfg.messages and not report.corrupt
                 and report.error is None)
    # Recovery statistics come from the telemetry registry — the same
    # numbers `python -m repro stats` prints.
    m = s.metrics
    report.retransmits = m.value("reliable.retransmits",
                                 vchannel=vch.name, rank=s.rank("m0"))
    report.fragments_dropped = m.total("faults.fragments_dropped")
    report.fragments_corrupted = m.total("faults.fragments_corrupted")
    report.messages_abandoned = m.total("gateway.messages_abandoned")
    report.failovers = m.total("vchannel.failovers")
    return report


def _describe(cfg: ChaosConfig) -> str:
    bits = [f"seed={cfg.seed}", f"messages={cfg.messages}",
            f"nbytes={cfg.nbytes}", f"drop={cfg.drop_p:.3f}",
            f"corrupt={cfg.corrupt_p:.3f}"]
    if cfg.delay_p:
        bits.append(f"delay={cfg.delay_p:.3f}x{cfg.delay_us:.0f}us")
    if cfg.crash_at is not None:
        bits.append(f"crash gwA@{cfg.crash_at:.0f}us")
        if cfg.restart_after is not None:
            bits.append(f"restart +{cfg.restart_after:.0f}us")
    for down_at, up_at in cfg.flaps:
        bits.append(f"flap myrinet {down_at:.0f}-{up_at:.0f}us")
    return " ".join(bits)


def replay_command(cfg: ChaosConfig, random_schedule: bool) -> str:
    """The one-liner that reproduces this exact run."""
    bits = [f"python tools/chaos.py --seed {cfg.seed}",
            f"--messages {cfg.messages}", f"--bytes {cfg.nbytes}"]
    if random_schedule:
        bits.append("--random")
    else:
        bits += [f"--drop {cfg.drop_p}", f"--corrupt {cfg.corrupt_p}"]
        if cfg.delay_p:
            bits += [f"--delay-p {cfg.delay_p}", f"--delay-us {cfg.delay_us}"]
        if cfg.crash_at is not None:
            bits.append(f"--crash {cfg.crash_at}")
            if cfg.restart_after is not None:
                bits.append(f"--restart {cfg.restart_after}")
        for down_at, up_at in cfg.flaps:
            bits.append(f"--flap {down_at} {up_at}")
    return " ".join(bits)


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--messages", type=int, default=4)
    ap.add_argument("--bytes", type=int, default=120_000, dest="nbytes")
    ap.add_argument("--drop", type=float, default=0.03,
                    help="per-fragment drop probability")
    ap.add_argument("--corrupt", type=float, default=0.015,
                    help="per-fragment corruption probability")
    ap.add_argument("--delay-p", type=float, default=0.0)
    ap.add_argument("--delay-us", type=float, default=0.0)
    ap.add_argument("--crash", type=float, default=None, metavar="T",
                    help="crash gateway gwA at simulated time T (µs)")
    ap.add_argument("--restart", type=float, default=None, metavar="DT",
                    help="restart gwA DT µs after the crash")
    ap.add_argument("--flap", type=float, nargs=2, action="append",
                    default=[], metavar=("DOWN", "UP"),
                    help="take the Myrinet rail down between DOWN and UP µs")
    ap.add_argument("--random", action="store_true",
                    help="draw the whole fault schedule from --seed")
    ap.add_argument("--runs", type=int, default=1,
                    help="consecutive runs (seed, seed+1, ...)")
    args = ap.parse_args(argv)

    failures = 0
    for i in range(args.runs):
        seed = args.seed + i
        if args.random:
            cfg = random_config(seed, messages=args.messages,
                                nbytes=args.nbytes)
        else:
            cfg = ChaosConfig(
                seed=seed, messages=args.messages, nbytes=args.nbytes,
                drop_p=args.drop, corrupt_p=args.corrupt,
                delay_p=args.delay_p, delay_us=args.delay_us,
                crash_at=args.crash, restart_after=args.restart,
                flaps=tuple(tuple(f) for f in args.flap))
        print(f"--- chaos run: {_describe(cfg)}")
        # Any escape from the harness — an unexpected exception as much as
        # a failed integrity verdict — must fail the whole invocation, or
        # CI smoke silently passes over real bugs.
        try:
            report = run_chaos(cfg)
        except Exception as exc:  # noqa: BLE001 — report, then fail the run
            print(f"run raised {type(exc).__name__}: {exc}")
            report = None
        else:
            print(report.summary())
        if report is None or not report.ok:
            failures += 1
            print(f"FAILING SEED: {seed}")
            print(f"replay: {replay_command(cfg, args.random)}")
    if failures:
        print(f"\n{failures}/{args.runs} chaos runs FAILED")
        return 1
    print(f"\nall {args.runs} chaos run(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
